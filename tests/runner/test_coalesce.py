"""Cell coalescing semantics (repro.runner.coalesce).

The invariants the runner's batched super-cells must keep: grouping is
a pure seed-stripped function of the specs, per-cell payloads and cache
entries are unchanged by coalescing, and ``coalesce=False`` is a pure
wall-time switch (bit-identical values either way).
"""

from __future__ import annotations

import os

import pytest

from repro.runner import RunnerConfig, RunSpec, cache_key, execute_cell, run_grid
from repro.runner.coalesce import (
    MF_BATCHABLE_METHODS,
    coalesce_signature,
    execute_multi_cell,
    plan_units,
)
from repro.runner.grids import table_iv_grid


def mf_spec(method="smf", seed=0, **extra):
    params = {
        "dataset": "lake",
        "method": method,
        "missing_rate": 0.1,
        "seed": seed,
        "fast": True,
        **extra,
    }
    return RunSpec(kind="imputation_rms", params=params)


class TestSignature:
    def test_same_config_different_seed_share_signature(self):
        assert coalesce_signature(mf_spec(seed=0)) == coalesce_signature(
            mf_spec(seed=7)
        )

    def test_different_config_differs(self):
        assert coalesce_signature(mf_spec()) != coalesce_signature(
            mf_spec(missing_rate=0.3)
        )
        assert coalesce_signature(mf_spec("smf")) != coalesce_signature(
            mf_spec("smfl")
        )

    def test_non_mf_methods_stay_singletons(self):
        assert coalesce_signature(mf_spec(method="knn")) is None
        assert coalesce_signature(mf_spec(method="smfl_sgd")) is None

    def test_volatile_and_foreign_kinds_stay_singletons(self):
        volatile = RunSpec(
            kind="imputation_rms", params=mf_spec().params, volatile=True
        )
        assert coalesce_signature(volatile) is None
        other = RunSpec(kind="repair_accuracy", params=mf_spec().params)
        assert coalesce_signature(other) is None

    def test_batchable_methods_are_the_mf_family(self):
        assert MF_BATCHABLE_METHODS == {"nmf", "smf", "smfl"}


class TestPlanUnits:
    def test_groups_by_signature_preserving_first_occurrence_order(self):
        specs = [
            mf_spec("smf", seed=0),      # 0 - group A
            mf_spec(method="knn"),        # 1 - singleton
            mf_spec("smf", seed=1),      # 2 - group A
            mf_spec("smfl", seed=0),     # 3 - group B
            mf_spec("smfl", seed=1),     # 4 - group B
        ]
        units = plan_units(specs, range(len(specs)))
        assert units == [[0, 2], [1], [3, 4]]

    def test_pending_subset_only(self):
        specs = [mf_spec("smf", seed=s) for s in range(4)]
        assert plan_units(specs, [1, 3]) == [[1, 3]]

    def test_cache_keys_are_per_cell_and_grouping_independent(self):
        # Coalescing must be invisible to the cache layer: the key is a
        # function of the spec alone, never of the unit it ran in.
        a, b = mf_spec(seed=0), mf_spec(seed=1)
        assert cache_key(a) != cache_key(b)
        assert cache_key(a) == cache_key(mf_spec(seed=0))


class TestMultiCellExecution:
    def test_payloads_match_per_cell_execution(self):
        specs = [mf_spec("smf", seed=s, rank=4) for s in range(3)]
        fused = execute_multi_cell(specs)["payloads"]
        assert len(fused) == 3
        for spec, payload in zip(specs, fused):
            single = execute_cell(spec)
            assert payload["value"] == single["value"]  # bit-identical RMS
            assert payload["fit"]["n_iter"] == single["fit"]["n_iter"]
            assert (
                payload["fit"]["final_objective"]
                == single["fit"]["final_objective"]
            )
            assert payload["wall_seconds"] >= 0

    def test_trace_events_collected_once_per_unit(self):
        specs = [mf_spec("smf", seed=s, rank=4) for s in range(2)]
        result = execute_multi_cell(specs, trace=True)
        names = {e.get("name") for e in result["trace_events"]}
        assert "batch.cells" in names


class TestRunGridCoalescing:
    GRID = dict(
        methods=("knn", "smf", "smfl"), datasets=("lake",),
        missing_rate=0.1, n_runs=2, fast=True,
    )

    def test_coalesced_equals_uncoalesced(self):
        grid = table_iv_grid(**self.GRID)
        on = run_grid(grid, RunnerConfig(coalesce=True))
        off = run_grid(grid, RunnerConfig(coalesce=False))
        assert on.value == off.value  # bit-identical, no tolerance

    def test_coalesced_parallel_matches_serial(self):
        grid = table_iv_grid(**self.GRID)
        serial = run_grid(grid, RunnerConfig(jobs=1))
        parallel = run_grid(grid, RunnerConfig(jobs=2))
        assert parallel.value == serial.value

    def test_cache_entries_written_per_cell(self, tmp_path):
        grid = table_iv_grid(**self.GRID)
        cache_dir = str(tmp_path / "cache")
        first = run_grid(grid, RunnerConfig(cache_dir=cache_dir))
        entries = [
            name
            for name in os.listdir(cache_dir)
            if name.endswith(".json")
        ]
        assert len(entries) == len(grid)  # one entry per cell, not per unit
        warm = run_grid(grid, RunnerConfig(cache_dir=cache_dir))
        assert warm.value == first.value
        # A warm rerun with coalescing disabled hits the same keys.
        warm_off = run_grid(
            grid, RunnerConfig(cache_dir=cache_dir, coalesce=False)
        )
        assert warm_off.value == first.value
