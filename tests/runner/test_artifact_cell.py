"""The ``fit_artifact`` cell: runner-managed model artifacts.

A grid cell that fits one model and persists it as a versioned
artifact: the cell value is the artifact's content hash (deterministic
given the params, so the cell caches like any scoring cell), the
manifest record carries the ``artifact`` payload (paths + hash), and
the written pair survives load + verify.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.model import load_model, verify_model
from repro.runner import RunnerConfig, RunSpec, run_cell, run_grid
from repro.runner.spec import RunGrid


def _params(artifact_dir: str, **overrides) -> dict:
    params = {
        "dataset": "lake",
        "method": "smfl",
        "missing_rate": 0.1,
        "seed": 0,
        "rank": 4,
        "n_rows": 120,
        "fast": True,
        "artifact_dir": artifact_dir,
    }
    params.update(overrides)
    return params


class TestFitArtifactCell:
    def test_cell_writes_verifiable_artifact(self, tmp_path):
        out = run_cell("fit_artifact", _params(str(tmp_path)))
        info = out["artifact"]
        assert out["value"] == info["content_hash"]
        assert os.path.exists(info["json_path"])
        assert os.path.exists(info["npz_path"])
        base = info["json_path"][: -len(".json")]
        assert verify_model(base)["ok"]
        model = load_model(base)
        assert model.method == "smfl"
        assert model.rank == 4
        assert out["fit"] is not None and out["fit"]["method"] == "smfl"

    def test_content_hash_is_deterministic(self, tmp_path):
        first = run_cell("fit_artifact", _params(str(tmp_path / "a")))
        second = run_cell("fit_artifact", _params(str(tmp_path / "b")))
        assert first["value"] == second["value"]

    def test_different_seed_different_hash(self, tmp_path):
        base = run_cell("fit_artifact", _params(str(tmp_path), seed=0))
        other = run_cell("fit_artifact", _params(str(tmp_path), seed=1))
        assert base["value"] != other["value"]

    def test_estimate_only_methods_also_persist(self, tmp_path):
        out = run_cell("fit_artifact", _params(str(tmp_path), method="mean"))
        base = out["artifact"]["json_path"][: -len(".json")]
        assert not load_model(base).is_factor_model


class TestManifestPassthrough:
    def test_record_carries_artifact_payload(self, tmp_path):
        spec = RunSpec(kind="fit_artifact", params=_params(str(tmp_path)))
        grid = RunGrid(
            experiment="artifact-smoke",
            cells=(spec,),
            assemble=lambda values: values,
        )
        outcome = run_grid(grid, RunnerConfig())
        record = outcome.records[0]
        assert record["artifact"]["content_hash"] == record["value"]
        assert os.path.exists(record["artifact"]["json_path"])

    def test_scoring_cells_stay_artifact_free(self):
        spec = RunSpec(
            kind="imputation_rms",
            params={
                "dataset": "lake", "method": "mean",
                "missing_rate": 0.1, "seed": 0, "fast": True,
            },
        )
        grid = RunGrid(
            experiment="no-artifact",
            cells=(spec,),
            assemble=lambda values: values,
        )
        outcome = run_grid(grid, RunnerConfig())
        assert "artifact" not in outcome.records[0]
