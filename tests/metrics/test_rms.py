"""Unit tests for the evaluation metrics (Section IV-A2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.masking import ObservationMask
from repro.metrics import mae_over_mask, relative_error_over_mask, rms_over_mask


@pytest.fixture
def simple_case():
    truth = np.array([[1.0, 2.0], [3.0, 4.0]])
    estimate = np.array([[1.0, 2.5], [3.0, 3.0]])
    # Cells (0,1) and (1,1) are the evaluated Psi set.
    mask = ObservationMask(np.array([[True, False], [True, False]]))
    return estimate, truth, mask


class TestRmsOverMask:
    def test_known_value(self, simple_case):
        estimate, truth, mask = simple_case
        expected = np.sqrt((0.5**2 + 1.0**2) / 2)
        assert rms_over_mask(estimate, truth, mask) == pytest.approx(expected)

    def test_observed_cells_ignored(self, simple_case):
        estimate, truth, mask = simple_case
        estimate = estimate.copy()
        estimate[0, 0] = 999.0  # observed cell: must not matter
        expected = np.sqrt((0.5**2 + 1.0**2) / 2)
        assert rms_over_mask(estimate, truth, mask) == pytest.approx(expected)

    def test_zero_for_perfect(self, rng):
        truth = rng.random((5, 4))
        mask = ObservationMask(rng.random((5, 4)) > 0.5)
        assert rms_over_mask(truth, truth, mask) == 0.0

    def test_empty_psi_rejected(self, rng):
        truth = rng.random((3, 3))
        mask = ObservationMask.fully_observed((3, 3))
        with pytest.raises(ValidationError, match="nothing to evaluate"):
            rms_over_mask(truth, truth, mask)

    def test_shape_mismatch(self, rng):
        mask = ObservationMask(np.zeros((2, 2), dtype=bool))
        with pytest.raises(ValidationError):
            rms_over_mask(rng.random((2, 2)), rng.random((3, 3)), mask)


class TestMaeOverMask:
    def test_known_value(self, simple_case):
        estimate, truth, mask = simple_case
        assert mae_over_mask(estimate, truth, mask) == pytest.approx(0.75)

    def test_mae_leq_rms(self, rng):
        truth = rng.random((10, 5))
        estimate = truth + rng.normal(scale=0.1, size=(10, 5))
        mask = ObservationMask(rng.random((10, 5)) > 0.5)
        assert mae_over_mask(estimate, truth, mask) <= rms_over_mask(
            estimate, truth, mask
        ) + 1e-12


class TestRelativeError:
    def test_known_value(self, simple_case):
        estimate, truth, mask = simple_case
        expected = 0.5 * (0.5 / 2.0 + 1.0 / 4.0)
        assert relative_error_over_mask(estimate, truth, mask) == pytest.approx(expected)

    def test_floor_guards_zero_truth(self):
        truth = np.array([[0.0, 1.0]])
        estimate = np.array([[0.5, 1.0]])
        mask = ObservationMask(np.array([[False, True]]))
        value = relative_error_over_mask(estimate, truth, mask, floor=0.1)
        assert value == pytest.approx(5.0)
