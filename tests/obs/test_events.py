"""The structured event log: record shape, sinks, ambience, recovery.

Everything downstream — ``report --tail``, ``expose``, the SLO gate —
keys on the invariants pinned here: schema-versioned records on the
one-clock anchor, whole-line append atomicity, a truncation-tolerant
reader whose tolerance extends *only* to the final line, and an
ambient default that costs nothing when telemetry is off.
"""

from __future__ import annotations

import json
import os
import threading
import time

import numpy as np
import pytest

from repro.core import SMFL
from repro.obs.live.events import (
    EVENT_SCHEMA_VERSION,
    NULL_EVENT_LOG,
    AppendJsonlSink,
    EventLog,
    RingBufferSink,
    event_log_to,
    get_event_log,
    next_request_id,
    read_event_log,
    set_event_log,
    use_event_log,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import collecting_tracer, use_tracer


class TestRecordShape:
    def test_required_fields(self):
        sink = RingBufferSink()
        record = EventLog(sink).emit("unit.test", answer=42)
        assert record["schema"] == EVENT_SCHEMA_VERSION
        assert record["event"] == "unit.test"
        assert record["level"] == "info"
        assert record["pid"] == os.getpid()
        assert record["attrs"] == {"answer": 42}
        assert sink.tail() == [record]

    def test_attrs_key_absent_without_attrs(self):
        record = EventLog().emit("unit.bare")
        assert "attrs" not in record
        assert "span_id" not in record

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="unknown event level"):
            EventLog().emit("unit.test", level="fatal")

    def test_one_clock_timestamp(self):
        # ``ts`` is wall-clock time via the perf_counter anchor: it
        # must agree with time.time() to well under a second.
        record = EventLog().emit("unit.clock")
        assert abs(record["ts"] - time.time()) < 0.5

    def test_span_linkage_under_a_tracer(self):
        tracer = collecting_tracer()
        log = EventLog(sink := RingBufferSink())
        with use_tracer(tracer):
            with tracer.span("unit:outer"):
                log.emit("unit.inside")
            log.emit("unit.outside")
        inside, outside = sink.tail()
        assert inside["span_id"]
        assert "span_id" not in outside

    def test_emit_metrics_embeds_a_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("unit.count").inc(3)
        sink = RingBufferSink()
        EventLog(sink).emit_metrics(registry)
        (record,) = sink.tail()
        assert record["event"] == "metrics.snapshot"
        assert record["attrs"]["values"]["unit.count"]["value"] == 3


class TestSinks:
    def test_ring_buffer_keeps_only_the_tail(self):
        sink = RingBufferSink(maxlen=3)
        log = EventLog(sink)
        for index in range(5):
            log.emit("unit.tick", index=index)
        assert [r["attrs"]["index"] for r in sink.tail()] == [2, 3, 4]
        assert [r["attrs"]["index"] for r in sink.tail(2)] == [3, 4]

    def test_append_sink_writes_live_lines(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        sink = AppendJsonlSink(path)
        log = EventLog(sink)
        log.emit("unit.first")
        # Visible immediately, before any close/flush: the live-tail
        # property an atomic whole-file sink cannot offer.
        assert len(read_event_log(path)) == 1
        log.emit("unit.second")
        log.close()
        assert [r["event"] for r in read_event_log(path)] == [
            "unit.first", "unit.second",
        ]

    def test_append_sink_appends_across_runs(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        for attempt in range(2):
            with event_log_to(path) as log:
                log.emit("unit.run", attempt=attempt)
        assert [r["attrs"]["attempt"] for r in read_event_log(path)] == [0, 1]

    def test_closed_sink_refuses_emits(self, tmp_path):
        sink = AppendJsonlSink(str(tmp_path / "events.jsonl"))
        sink.close()
        with pytest.raises(ValueError, match="closed"):
            sink.emit({"event": "unit.late"})

    def test_concurrent_emits_stay_whole_lines(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        log = EventLog(AppendJsonlSink(path))
        n_threads, per_thread = 8, 50

        def _hammer(worker):
            for index in range(per_thread):
                log.emit("unit.thread", worker=worker, index=index)

        threads = [
            threading.Thread(target=_hammer, args=(t,))
            for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        log.close()
        records = read_event_log(path, tolerate_truncation=False)
        assert len(records) == n_threads * per_thread
        seen = {
            (r["attrs"]["worker"], r["attrs"]["index"]) for r in records
        }
        assert len(seen) == n_threads * per_thread


class TestReadEventLog:
    def test_torn_final_line_dropped(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(
            json.dumps({"event": "unit.ok"}) + "\n" + '{"event": "unit.t'
        )
        records = read_event_log(str(path))
        assert [r["event"] for r in records] == ["unit.ok"]

    def test_torn_final_line_raises_without_tolerance(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"event": "unit.t')
        with pytest.raises(ValueError, match="invalid JSONL at line 1"):
            read_event_log(str(path), tolerate_truncation=False)

    def test_mid_file_corruption_always_raises(self, tmp_path):
        # Whole-line append atomicity means a torn line anywhere but
        # the end is real corruption, not a crash artifact.
        path = tmp_path / "events.jsonl"
        path.write_text(
            '{"event": "unit.a"}\nnot json\n{"event": "unit.b"}\n'
        )
        with pytest.raises(ValueError, match="invalid JSONL at line 2"):
            read_event_log(str(path))


class TestAmbientLog:
    def test_default_is_the_null_log(self):
        assert get_event_log() is NULL_EVENT_LOG
        assert not NULL_EVENT_LOG.enabled
        assert NULL_EVENT_LOG.emit("unit.dropped", x=1) is None

    def test_set_returns_previous_and_use_restores(self):
        log = EventLog(RingBufferSink())
        previous = set_event_log(log)
        try:
            assert previous is NULL_EVENT_LOG
            assert get_event_log() is log
        finally:
            set_event_log(previous)
        with use_event_log(log):
            assert get_event_log() is log
        assert get_event_log() is NULL_EVENT_LOG

    def test_use_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with use_event_log(EventLog()):
                raise RuntimeError("boom")
        assert get_event_log() is NULL_EVENT_LOG


class TestRequestIds:
    def test_format_and_monotonicity(self):
        first, second = next_request_id(), next_request_id()
        pid = os.getpid()
        assert first.startswith(f"req-{pid}-")
        n_first = int(first.rsplit("-", 1)[1])
        n_second = int(second.rsplit("-", 1)[1])
        assert n_second == n_first + 1


class TestEngineIntegration:
    def test_a_fit_emits_lifecycle_events(self, rng):
        spatial = rng.random((30, 2)) * 4.0
        attrs = np.abs(rng.normal(1.0, 0.3, size=(30, 4)))
        x = np.hstack([spatial, attrs])
        x[rng.random(x.shape) < 0.1] = np.nan
        x[:, :2] = spatial
        sink = RingBufferSink()
        with use_event_log(EventLog(sink)):
            SMFL(rank=3, n_spatial=2, max_iter=10, random_state=0).fit(x)
        names = [r["event"] for r in sink.tail()]
        assert "engine.fit_start" in names
        assert "engine.fit_end" in names
        assert names.index("engine.fit_start") < names.index("engine.fit_end")
        end = next(
            r for r in sink.tail() if r["event"] == "engine.fit_end"
        )
        assert end["attrs"]["n_iter"] >= 1
