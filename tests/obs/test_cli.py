"""The ``python -m repro.obs`` CLI against real generated traces."""

from __future__ import annotations

import json

import pytest

from repro.obs import read_events, trace_to
from repro.obs.__main__ import main


@pytest.fixture()
def trace_path(tmp_path):
    path = str(tmp_path / "trace.jsonl")
    with trace_to(path, experiment="unit") as tracer:
        with tracer.span("fit", solver="mult"):
            for index in range(3):
                with tracer.span("iteration", index=index):
                    pass
        tracer.emit(
            {"type": "metrics",
             "values": {"cache.hits": {"type": "counter", "value": 2}}}
        )
    return path


class TestReport:
    def test_prints_tree_coverage_and_metrics(self, trace_path, capsys):
        assert main(["report", trace_path]) == 0
        out = capsys.readouterr().out
        assert "4 spans" in out
        assert "root coverage" in out
        assert "iteration x3" in out
        assert "## metrics" in out
        assert "cache.hits: 2" in out

    def test_no_spans_is_an_error(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text('{"type": "meta"}\n')
        assert main(["report", str(empty)]) == 1
        assert "no span events" in capsys.readouterr().out


class TestExports:
    def test_summary_subcommand(self, trace_path, tmp_path, capsys):
        out_path = str(tmp_path / "summary.json")
        assert main(["summary", trace_path, "-o", out_path]) == 0
        summary = json.load(open(out_path, encoding="utf-8"))
        assert summary["spans"]["iteration"]["count"] == 3

    def test_chrome_subcommand(self, trace_path, tmp_path, capsys):
        out_path = str(tmp_path / "chrome.json")
        assert main(["chrome", trace_path, "-o", out_path]) == 0
        chrome = json.load(open(out_path, encoding="utf-8"))
        assert len(chrome["traceEvents"]) == 4


class TestEndToEndWithEngine:
    def test_traced_fit_produces_analysable_tree(self, tmp_path, rng, capsys):
        from repro.core.smfl import SMFL

        path = str(tmp_path / "fit.jsonl")
        x = abs(rng.normal(size=(40, 6))) + 0.1
        with trace_to(path):
            SMFL(rank=3, n_spatial=2, max_iter=4, random_state=0).fit(x)
        names = {e["name"] for e in read_events(path) if e.get("type") == "span"}
        assert {"fit", "iteration", "evaluate"} <= names
        assert main(["report", path]) == 0
        assert "kernel:multiplicative" in capsys.readouterr().out
