"""Per-request head sampling: reproducible coins, honest bookkeeping."""

from __future__ import annotations

import pytest

from repro.obs.live import Sampler


class TestRates:
    def test_rate_one_keeps_everything(self):
        sampler = Sampler(1.0)
        assert all(sampler.sample() for _ in range(100))
        assert sampler.stats()["effective_rate"] == 1.0

    def test_rate_zero_drops_everything(self):
        sampler = Sampler(0.0)
        assert not any(sampler.sample() for _ in range(100))
        stats = sampler.stats()
        assert stats["decisions"] == 100
        assert stats["sampled"] == 0
        assert stats["effective_rate"] == 0.0

    def test_fractional_rate_is_seed_deterministic(self):
        def draws(seed):
            sampler = Sampler(0.1, seed=seed)
            return [sampler.sample() for _ in range(200)]

        assert draws(7) == draws(7)
        assert draws(7) != draws(8)

    def test_fractional_rate_lands_near_target(self):
        sampler = Sampler(0.1, seed=0)
        for _ in range(2000):
            sampler.sample()
        assert 0.05 < sampler.stats()["effective_rate"] < 0.20


class TestValidation:
    @pytest.mark.parametrize("rate", [-0.1, 1.5, 2.0])
    def test_out_of_range_rate_rejected(self, rate):
        with pytest.raises(ValueError, match="sample rate"):
            Sampler(rate)

    def test_no_decisions_means_no_effective_rate(self):
        assert Sampler(0.5).stats()["effective_rate"] is None
