"""Tracer semantics: nesting, null-mode cost model, sinks, decorators.

The contracts pinned here:

- the ambient tracer defaults to the null tracer, whose spans still
  measure their duration (instrumented code reads ``span.duration``
  unconditionally) but record nothing;
- real spans nest through ``span_id``/``parent_id`` links, per thread;
- span ids are unique across *all* tracers in a process - workers build
  one tracer per cell, and id reuse would alias spans in merged traces;
- ``trace_to`` writes a complete JSONL file atomically on exit;
- the ``traced`` decorator is a no-op (beyond the duration clock) when
  tracing is off and emits a method-tagged span when it is on.
"""

from __future__ import annotations

import json
import threading

from repro.obs import (
    NULL_TRACER,
    MemorySink,
    Tracer,
    collecting_tracer,
    get_tracer,
    read_events,
    trace_to,
    traced,
    use_tracer,
)


def _spans(events):
    return [e for e in events if e.get("type") == "span"]


class TestNullMode:
    def test_ambient_default_is_null(self):
        assert get_tracer() is NULL_TRACER
        assert not get_tracer().enabled

    def test_null_span_still_measures_duration(self):
        with NULL_TRACER.span("work", ignored="attr") as span:
            sum(range(1000))
        assert span.duration > 0

    def test_null_span_keeps_no_state(self):
        with NULL_TRACER.span("work") as span:
            span.set_attr("k", "v")  # dropped silently
        assert NULL_TRACER.current_span_id() is None
        NULL_TRACER.emit({"type": "marker"})  # dropped silently


class TestNesting:
    def test_parent_child_links(self):
        tracer = collecting_tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert tracer.current_span_id() == inner.span_id
            assert tracer.current_span_id() == outer.span_id
        events = _spans(tracer.sink.events)
        by_name = {e["name"]: e for e in events}
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
        assert by_name["outer"]["parent_id"] is None
        # Children close (and emit) before their parents.
        assert [e["name"] for e in events] == ["inner", "outer"]

    def test_siblings_share_a_parent(self):
        tracer = collecting_tracer()
        with tracer.span("outer") as outer:
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        parents = {
            e["name"]: e["parent_id"] for e in _spans(tracer.sink.events)
        }
        assert parents["a"] == parents["b"] == outer.span_id

    def test_threads_get_independent_stacks(self):
        tracer = collecting_tracer()
        seen = {}

        def worker():
            with tracer.span("thread-root") as span:
                seen["parent"] = span.parent_id

        with tracer.span("main-root"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        # The other thread's span must NOT nest under main's open span.
        assert seen["parent"] is None

    def test_ids_unique_across_tracers_in_one_process(self):
        first = collecting_tracer()
        second = collecting_tracer()
        ids = set()
        for tracer in (first, second, first):
            with tracer.span("cell"):
                pass
            ids.add(_spans(tracer.sink.events)[-1]["span_id"])
        assert len(ids) == 3

    def test_span_events_carry_attrs_and_pid(self):
        tracer = collecting_tracer()
        with tracer.span("fit", solver="mult") as span:
            span.set_attr("objective", 1.5)
        event = _spans(tracer.sink.events)[0]
        assert event["attrs"] == {"solver": "mult", "objective": 1.5}
        assert event["pid"] > 0
        assert event["end"] >= event["start"]
        assert event["duration"] >= 0


class TestAmbientScoping:
    def test_use_tracer_restores_previous(self):
        tracer = collecting_tracer()
        with use_tracer(tracer):
            assert get_tracer() is tracer
        assert get_tracer() is NULL_TRACER

    def test_trace_to_writes_valid_jsonl(self, tmp_path):
        path = str(tmp_path / "sub" / "trace.jsonl")
        with trace_to(path, experiment="unit") as tracer:
            assert get_tracer() is tracer
            with tracer.span("root"):
                pass
        events = read_events(path)
        assert events[0]["type"] == "meta"
        assert events[0]["experiment"] == "unit"
        assert [e["name"] for e in _spans(events)] == ["root"]
        # No temp files left behind by the atomic write.
        assert [p.name for p in (tmp_path / "sub").iterdir()] == ["trace.jsonl"]

    def test_jsonl_lines_are_individually_parseable(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with trace_to(path) as tracer:
            for index in range(3):
                with tracer.span("step", index=index):
                    pass
        with open(path, encoding="utf-8") as handle:
            lines = [json.loads(line) for line in handle if line.strip()]
        assert len(lines) == 3


class TestTracedDecorator:
    class Model:
        name = "knn"

        @traced("fit_impute")
        def fit_impute(self, x, mask=None):
            return x * 2

    def test_disabled_mode_is_passthrough(self):
        assert self.Model().fit_impute(21) == 42

    def test_enabled_mode_emits_method_tagged_span(self):
        tracer = collecting_tracer()
        with use_tracer(tracer):
            assert self.Model().fit_impute(21) == 42
        (event,) = _spans(tracer.sink.events)
        assert event["name"] == "fit_impute"
        assert event["attrs"]["method"] == "knn"


class TestWallClockAnchor:
    def test_concurrent_tracers_agree_on_the_timeline(self):
        # Two tracers (parent + simulated worker) must place
        # back-to-back spans in order on the shared wall-clock axis.
        parent = Tracer(MemorySink())
        with parent.span("first"):
            pass
        worker = Tracer(MemorySink())
        with worker.span("second"):
            pass
        first = _spans(parent.sink.events)[0]
        second = _spans(worker.sink.events)[0]
        assert second["start"] >= first["start"]


class TestTimedCall:
    def test_returns_span_duration_without_tracer(self):
        from repro.obs import timed_call

        seconds = timed_call("unit", lambda: sum(range(1000)))
        assert seconds >= 0.0

    def test_emits_named_span_when_tracing(self):
        from repro.obs import timed_call
        from repro.obs.trace import collecting_tracer, use_tracer

        tracer = collecting_tracer()
        with use_tracer(tracer):
            seconds = timed_call("bench:unit", lambda: None, label="x")
        spans = [e for e in tracer.sink.events if e.get("type") == "span"]
        assert len(spans) == 1
        assert spans[0]["name"] == "bench:unit"
        assert spans[0]["attrs"]["label"] == "x"
        assert spans[0]["duration"] >= 0.0
        assert seconds == spans[0]["duration"]
