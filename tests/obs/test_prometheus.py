"""Prometheus exposition: golden output, escaping, strict self-checks.

The renderer's output is consumed by real scrapers, so the format is
pinned three ways: a golden fixture (byte-exact output for a fixed
snapshot), property tests over the label-escaping round trip (any
label value must survive render -> parse), and the strict parser
itself rejecting the malformations CI's ``expose --check`` guards
against.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.live.prometheus import (
    _parse_flat_key,
    metric_name,
    parse_exposition,
    render_prometheus,
    snapshot_series,
)
from repro.obs.metrics import MetricsRegistry, flat_metric_key

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")

GOLDEN_SNAPSHOT = {
    "serving.requests": {"type": "counter", "value": 3},
    'oocore.worker.last_seen_age_seconds{worker="0"}': {
        "type": "gauge", "value": 0.25,
    },
    'oocore.worker.last_seen_age_seconds{worker="1"}': {
        "type": "gauge", "value": 1.5,
    },
    "serving.rows_per_request": {"type": "histogram", "count": 2, "sum": 12.0},
    "serving.request_seconds": {
        "type": "quantile_histogram", "count": 2, "sum": 0.5,
        "p50": 0.2, "p90": 0.3, "p99": 0.3,
    },
    'runner.cells{status="done"}': {"type": "counter", "value": 7},
}


class TestGolden:
    def test_render_matches_committed_fixture(self):
        with open(
            os.path.join(FIXTURES, "exposition.golden.prom"),
            encoding="utf-8",
        ) as handle:
            golden = handle.read()
        assert render_prometheus(GOLDEN_SNAPSHOT) == golden

    def test_golden_fixture_parses_strictly(self):
        text = render_prometheus(GOLDEN_SNAPSHOT)
        samples = parse_exposition(text)
        assert samples["repro_serving_requests_total"] == 3.0
        assert samples['repro_serving_request_seconds{quantile="0.99"}'] == 0.3
        assert (
            samples['repro_oocore_worker_last_seen_age_seconds{worker="1"}']
            == 1.5
        )


class TestRegistryRender:
    def test_populated_registry_round_trips(self):
        registry = MetricsRegistry()
        registry.counter("unit.hits").inc(5)
        registry.gauge("unit.depth", {"queue": "main"}).set(2.0)
        registry.histogram("unit.sizes").observe(4.0)
        qh = registry.quantile_histogram("unit.seconds")
        for value in (0.1, 0.2, 0.3):
            qh.observe(value, exemplar="req-1-1")
        text = render_prometheus(registry)
        samples = parse_exposition(text)
        assert samples["repro_unit_hits_total"] == 5.0
        assert samples['repro_unit_depth{queue="main"}'] == 2.0
        assert samples["repro_unit_sizes_count"] == 1.0
        assert samples["repro_unit_seconds_count"] == 3.0
        assert 'repro_unit_seconds{quantile="0.5"}' in samples

    def test_unset_gauge_skipped(self):
        registry = MetricsRegistry()
        registry.gauge("unit.idle")  # created, never set
        registry.counter("unit.hits").inc()
        # The family's TYPE header is legal exposition; what must not
        # appear is a sample line for the never-set gauge.
        samples = parse_exposition(render_prometheus(registry))
        assert "repro_unit_idle" not in samples
        assert samples["repro_unit_hits_total"] == 1.0

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""
        assert parse_exposition("") == {}


class TestFailureModes:
    def test_mangling_collision_is_an_error(self):
        # "a.b" and "a_b" both mangle to repro_a_b: a scrape would
        # silently merge them, so the renderer must refuse.
        snapshot = {
            "unit.count": {"type": "counter", "value": 1},
            "unit_count": {"type": "counter", "value": 2},
        }
        with pytest.raises(ValueError, match="duplicate exposition series"):
            render_prometheus(snapshot)

    def test_cross_type_collision_is_an_error(self):
        snapshot = {
            "unit.kind": {"type": "counter", "value": 1},
            "unit_kind_total": {"type": "gauge", "value": 2.0},
        }
        with pytest.raises(ValueError, match="rendered as both"):
            render_prometheus(snapshot)

    def test_unknown_snapshot_type_is_an_error(self):
        with pytest.raises(ValueError, match="unknown snapshot type"):
            render_prometheus({"unit.x": {"type": "mystery", "value": 1}})

    @pytest.mark.parametrize(
        "text",
        [
            "repro_x 1.0\n",  # sample before TYPE
            "# TYPE repro_x counter\nrepro_x notanumber\n",
            "# TYPE repro_x counter\nrepro_x 1\nrepro_x 2\n",  # duplicate
            "# TYPE repro_x counter\n# TYPE repro_x counter\n",  # repeated
            '# TYPE repro_x gauge\nrepro_x{a="unclosed 1\n',
        ],
    )
    def test_strict_parser_rejects(self, text):
        with pytest.raises(ValueError):
            parse_exposition(text)


_LABEL_NAMES = st.from_regex(r"[a-zA-Z_][a-zA-Z0-9_]{0,8}", fullmatch=True)
_LABEL_VALUES = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), max_size=20
)
_LABELS = st.dictionaries(_LABEL_NAMES, _LABEL_VALUES, max_size=4)


class TestEscapingProperties:
    @given(labels=_LABELS)
    @settings(max_examples=200, deadline=None)
    def test_flat_key_round_trips(self, labels):
        # The registry's flat key and the exposition parser agree on
        # escaping: any label values survive the round trip exactly.
        key = flat_metric_key("unit.family", labels)
        family, parsed = _parse_flat_key(key)
        assert family == "unit.family"
        assert parsed == labels

    @given(
        series=st.lists(
            st.tuples(
                _LABELS,
                st.floats(allow_nan=False, width=64),
            ),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_rendered_gauges_survive_strict_parsing(self, series):
        snapshot = {
            flat_metric_key("unit.family", labels): {
                "type": "gauge", "value": value,
            }
            for labels, value in series
        }
        text = render_prometheus(snapshot)
        samples = parse_exposition(text)  # strictness: must not raise
        assert len(samples) == len(snapshot)
        assert sorted(samples.values()) == sorted(
            float(entry["value"]) for entry in snapshot.values()
        )

    @given(labels=_LABELS)
    @settings(max_examples=100, deadline=None)
    def test_snapshot_series_inverts_flat_keys(self, labels):
        snapshot = {
            flat_metric_key("unit.family", labels): {
                "type": "counter", "value": 1,
            }
        }
        ((family, parsed, entry),) = snapshot_series(snapshot)
        assert (family, parsed) == ("unit.family", labels)
        assert entry["value"] == 1


class TestMetricName:
    def test_mangling(self):
        assert metric_name("serving.request_seconds") == (
            "repro_serving_request_seconds"
        )
        assert metric_name("a-b c.d") == "repro_a_b_c_d"
