"""The SLO gate's reduction and budgets: exact quantiles, named violations."""

from __future__ import annotations

from repro.bench import validate_bench_payload
from repro.obs.live.slo import (
    DEFAULT_BUDGETS,
    _exact_quantile,
    build_slo_payload,
    evaluate_slo,
    serving_stats_from_events,
)


def _done(seconds):
    return {"event": "serving.request_done", "attrs": {"seconds": seconds}}


class TestExactQuantiles:
    def test_p99_is_the_99th_sorted_value(self):
        # Exact, not bucketed: the 99th of 100 distinct latencies.
        values = [float(i) for i in range(1, 101)]
        assert _exact_quantile(values, 0.99) == 99.0
        assert _exact_quantile(values, 0.50) == 50.0
        assert _exact_quantile(values, 1.0) == 100.0

    def test_small_samples(self):
        assert _exact_quantile([3.0], 0.99) == 3.0
        assert _exact_quantile([1.0, 2.0], 0.50) == 1.0
        assert _exact_quantile([], 0.99) is None


class TestStatsReduction:
    def test_mixed_stream_reduces_correctly(self):
        events = [
            _done(0.010),
            _done(0.020),
            {"event": "serving.request_error", "attrs": {"rows": 4}},
            _done(0.030),
            {"event": "oocore.worker_stalled", "attrs": {"worker": 1}},
            {"event": "oocore.worker_died", "attrs": {"worker": 0}},
            {"event": "engine.fit_start"},  # unrelated events are ignored
        ]
        stats = serving_stats_from_events(events)
        assert stats["requests"] == 3
        assert stats["errors"] == 1
        assert stats["error_rate"] == 0.25
        assert stats["p50_seconds"] == 0.020
        assert stats["p99_seconds"] == 0.030
        assert stats["max_seconds"] == 0.030
        assert stats["stall_count"] == 1
        assert stats["worker_deaths"] == 1

    def test_empty_stream(self):
        stats = serving_stats_from_events([])
        assert stats["requests"] == 0
        assert stats["p99_seconds"] is None
        assert stats["error_rate"] == 0.0


class TestEvaluate:
    def test_within_budget_is_clean(self):
        stats = serving_stats_from_events([_done(0.01), _done(0.02)])
        assert evaluate_slo(stats, DEFAULT_BUDGETS) == []

    def test_violations_name_the_metric_first(self):
        stats = serving_stats_from_events(
            [
                _done(2.0),
                {"event": "serving.request_error", "attrs": {}},
                {"event": "oocore.worker_stalled", "attrs": {}},
                {"event": "oocore.worker_died", "attrs": {}},
            ]
        )
        violations = evaluate_slo(stats, DEFAULT_BUDGETS)
        leading = [v.split(":")[0] for v in violations]
        assert leading == [
            "p99_seconds", "error_rate", "stall_count", "worker_deaths",
        ]
        p99 = next(v for v in violations if v.startswith("p99_seconds"))
        assert "2" in p99 and "0.5" in p99  # observed and budget named

    def test_empty_run_cannot_pass(self):
        # Zero requests proves nothing; the gate must refuse, loudly.
        violations = evaluate_slo(serving_stats_from_events([]), DEFAULT_BUDGETS)
        assert len(violations) == 1
        assert violations[0].startswith("p99_seconds")
        assert "empty run" in violations[0]

    def test_null_budget_disables_that_check(self):
        stats = serving_stats_from_events([_done(2.0)])
        assert evaluate_slo(stats, {"p99_seconds_max": None}) == []


class TestPayload:
    def test_payload_validates_against_the_bench_schema(self):
        stats = serving_stats_from_events([_done(0.01), _done(0.02)])
        payload = build_slo_payload(stats)
        assert validate_bench_payload(
            "SLO_serving", payload, require_envelope=False
        ) == []
        assert payload["acceptance"]["recorded_within_budgets"] is True

    def test_payload_flags_a_violating_run(self):
        stats = serving_stats_from_events([_done(2.0)])
        payload = build_slo_payload(stats)
        assert payload["acceptance"]["recorded_within_budgets"] is False

    def test_budget_overrides_land_in_the_payload(self):
        stats = serving_stats_from_events([_done(0.01)])
        payload = build_slo_payload(stats, {"p99_seconds_max": 0.25})
        assert payload["budgets"]["p99_seconds_max"] == 0.25
        assert payload["budgets"]["error_rate_max"] == 0.0
