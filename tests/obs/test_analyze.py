"""Trace analysis: tree merging, self time, coverage, rendering, exports."""

from __future__ import annotations

import json

from repro.obs import (
    aggregate_spans,
    build_tree,
    coverage,
    render_top,
    render_tree,
    to_chrome_trace,
)


def _span(name, span_id, parent_id, start, end, **attrs):
    event = {
        "type": "span", "name": name, "span_id": span_id,
        "parent_id": parent_id, "start": start, "end": end,
        "duration": end - start, "pid": 1, "thread": 1,
    }
    if attrs:
        event["attrs"] = attrs
    return event


def _fixture_events():
    # run(0..10) -> cell#a(0..4) -> fit(0..3); cell#b(4..8) -> fit(4..7)
    return [
        {"type": "meta", "experiment": "unit"},
        _span("run", "1-1", None, 0.0, 10.0),
        _span("cell", "1-2", "1-1", 0.0, 4.0),
        _span("fit", "1-3", "1-2", 0.0, 3.0),
        _span("cell", "1-4", "1-1", 4.0, 8.0),
        _span("fit", "1-5", "1-4", 4.0, 7.0),
    ]


class TestBuildTree:
    def test_siblings_merge_by_name(self):
        root = build_tree(_fixture_events())
        run = root.children["run"]
        cell = run.children["cell"]
        assert cell.count == 2
        assert cell.total == 8.0
        assert cell.children["fit"].count == 2
        assert cell.children["fit"].total == 6.0

    def test_self_time_is_total_minus_children(self):
        root = build_tree(_fixture_events())
        run = root.children["run"]
        assert run.self_time == 2.0  # 10 - (4 + 4)
        assert run.children["cell"].self_time == 2.0  # 8 - 6
        assert run.children["cell"].children["fit"].self_time == 6.0

    def test_orphan_spans_become_roots(self):
        # A worker shard merged without re-parenting: parent unknown.
        events = [_span("lost", "9-1", "9-0", 0.0, 1.0)]
        root = build_tree(events)
        assert root.children["lost"].total == 1.0

    def test_empty_stream(self):
        root = build_tree([])
        assert root.children == {}
        assert root.total == 0.0


class TestAggregateAndCoverage:
    def test_flat_aggregates(self):
        flat = aggregate_spans(_fixture_events())
        assert flat["cell"] == {
            "count": 2, "total_seconds": 8.0, "self_seconds": 2.0,
        }
        assert flat["fit"]["self_seconds"] == 6.0

    def test_full_coverage(self):
        cover = coverage(_fixture_events())
        assert cover["extent_seconds"] == 10.0
        assert cover["fraction"] == 1.0

    def test_gap_reduces_coverage(self):
        events = [
            _span("a", "1-1", None, 0.0, 2.0),
            _span("b", "1-2", None, 8.0, 10.0),
        ]
        cover = coverage(events)
        assert cover["extent_seconds"] == 10.0
        assert cover["covered_seconds"] == 4.0
        assert cover["fraction"] == 0.4

    def test_overlapping_roots_count_once(self):
        # Two concurrent worker roots: the union, not the sum.
        events = [
            _span("a", "1-1", None, 0.0, 6.0),
            _span("b", "2-1", None, 4.0, 10.0),
        ]
        assert coverage(events)["fraction"] == 1.0

    def test_empty_stream(self):
        assert coverage([])["fraction"] == 0.0


class TestRendering:
    def test_tree_shows_merged_counts_and_shares(self):
        text = render_tree(build_tree(_fixture_events()))
        assert "run" in text
        assert "cell x2" in text
        assert "fit x2" in text
        assert "100.0%" in text

    def test_depth_limit(self):
        text = render_tree(build_tree(_fixture_events()), max_depth=0)
        assert "run" in text
        assert "cell" not in text

    def test_top_table_ranks_by_self_time(self):
        text = render_top(aggregate_spans(_fixture_events()), top=2)
        lines = text.splitlines()
        assert len(lines) == 3  # header + 2 rows
        assert lines[1].startswith("fit")  # 6s self beats 2s


class TestChromeExport:
    def test_events_are_relative_microseconds(self):
        chrome = to_chrome_trace(_fixture_events())
        assert chrome["displayTimeUnit"] == "ms"
        events = chrome["traceEvents"]
        assert len(events) == 5
        run = next(e for e in events if e["name"] == "run")
        assert run["ph"] == "X"
        assert run["ts"] == 0.0
        assert run["dur"] == 10.0 * 1e6
        assert json.loads(json.dumps(chrome)) == chrome
