"""Metrics instruments: counters, gauges, Welford histograms, profiling."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.obs import (
    MetricsRegistry,
    get_metrics,
    profiled,
    reset_metrics,
)


class TestInstruments:
    def test_counter_accumulates_and_rejects_negatives(self):
        counter = MetricsRegistry().counter("cells")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)

    def test_gauge_holds_last_value(self):
        gauge = MetricsRegistry().gauge("rss")
        assert gauge.snapshot()["value"] is None
        gauge.set(10)
        gauge.set(7.5)
        assert gauge.snapshot() == {"type": "gauge", "value": 7.5}

    def test_histogram_matches_numpy_moments(self):
        samples = [0.5, 1.25, 2.0, 8.0, 0.125]
        histogram = MetricsRegistry().histogram("seconds")
        for sample in samples:
            histogram.observe(sample)
        snapshot = histogram.snapshot()
        assert snapshot["count"] == len(samples)
        assert snapshot["sum"] == sum(samples)
        assert snapshot["min"] == min(samples)
        assert snapshot["max"] == max(samples)
        np.testing.assert_allclose(snapshot["mean"], np.mean(samples))
        np.testing.assert_allclose(snapshot["stddev"], np.std(samples))

    def test_empty_histogram_snapshot_is_minimal(self):
        assert MetricsRegistry().histogram("h").snapshot() == {
            "type": "histogram", "count": 0,
        }


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("hits") is registry.counter("hits")

    def test_one_name_one_kind(self):
        registry = MetricsRegistry()
        registry.counter("hits")
        with pytest.raises(ValueError, match="is a Counter"):
            registry.gauge("hits")

    def test_snapshot_is_name_sorted_and_json_ready(self):
        registry = MetricsRegistry()
        registry.counter("z.last").inc()
        registry.gauge("a.first").set(1.0)
        registry.histogram("m.middle").observe(2.0)
        snapshot = registry.snapshot()
        assert list(snapshot) == ["a.first", "m.middle", "z.last"]
        assert json.loads(json.dumps(snapshot)) == snapshot

    def test_reset_clears(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        registry.reset()
        assert registry.snapshot() == {}

    def test_ambient_registry_is_process_wide(self):
        reset_metrics()
        try:
            get_metrics().counter("ambient.test").inc(3)
            assert get_metrics().snapshot()["ambient.test"]["value"] == 3
        finally:
            reset_metrics()


class TestProfiled:
    def test_records_peak_rss(self):
        registry = MetricsRegistry()
        with profiled(registry, prefix="mem"):
            pass
        assert registry.snapshot()["mem.peak_rss_kb"]["value"] > 0

    def test_allocation_tracing_is_opt_in(self):
        registry = MetricsRegistry()
        with profiled(registry):
            list(range(1000))
        assert "profile.peak_traced_bytes" not in registry.snapshot()

        with profiled(registry, trace_allocations=True):
            buffer = np.zeros(1_000_000)
            del buffer
        peak = registry.snapshot()["profile.peak_traced_bytes"]["value"]
        assert peak >= 8_000_000  # the 1M-float array was seen


class TestQuantileHistogram:
    def _histogram(self, values):
        from repro.obs import QuantileHistogram

        histogram = QuantileHistogram()
        for value in values:
            histogram.observe(value)
        return histogram

    def test_empty_reports_none(self):
        histogram = self._histogram([])
        assert histogram.quantile(0.5) is None
        assert histogram.snapshot() == {"type": "quantile_histogram", "count": 0}

    def test_quantiles_within_bucket_error(self):
        # Uniform log sweep over three decades: every estimate must land
        # within one log bucket (~12% relative) of the exact quantile.
        values = np.logspace(-3, 0, 400)
        histogram = self._histogram(values)
        for q in (0.5, 0.9, 0.99):
            exact = float(np.quantile(values, q))
            estimate = histogram.quantile(q)
            assert abs(estimate - exact) / exact < 0.15

    def test_estimates_clamped_to_observed_range(self):
        histogram = self._histogram([0.004, 0.005])
        for q in (0.0, 0.5, 1.0):
            assert 0.004 <= histogram.quantile(q) <= 0.005

    def test_nonpositive_samples_land_in_underflow(self):
        histogram = self._histogram([-1.0, 0.0, 5.0])
        assert histogram.count == 3
        assert histogram.quantile(0.5) == -1.0  # underflow reports min
        assert histogram.max == 5.0

    def test_invalid_q_rejected(self):
        with pytest.raises(ValueError):
            self._histogram([1.0]).quantile(1.5)

    def test_memory_stays_bounded(self):
        histogram = self._histogram(np.logspace(-6, 2, 10_000))
        # 8 decades * 10 buckets/decade, not 10k samples.
        assert len(histogram._buckets) <= 81

    def test_registry_accessor_and_kind_collision(self):
        registry = MetricsRegistry()
        histogram = registry.quantile_histogram("latency")
        histogram.observe(0.25)
        assert registry.quantile_histogram("latency") is histogram
        snapshot = registry.snapshot()["latency"]
        assert snapshot["type"] == "quantile_histogram"
        assert snapshot["count"] == 1
        with pytest.raises(Exception):
            registry.counter("latency")
