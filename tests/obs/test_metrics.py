"""Metrics instruments: counters, gauges, Welford histograms, profiling."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.obs import (
    MetricsRegistry,
    get_metrics,
    profiled,
    reset_metrics,
)


class TestInstruments:
    def test_counter_accumulates_and_rejects_negatives(self):
        counter = MetricsRegistry().counter("cells")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)

    def test_gauge_holds_last_value(self):
        gauge = MetricsRegistry().gauge("rss")
        assert gauge.snapshot()["value"] is None
        gauge.set(10)
        gauge.set(7.5)
        assert gauge.snapshot() == {"type": "gauge", "value": 7.5}

    def test_histogram_matches_numpy_moments(self):
        samples = [0.5, 1.25, 2.0, 8.0, 0.125]
        histogram = MetricsRegistry().histogram("seconds")
        for sample in samples:
            histogram.observe(sample)
        snapshot = histogram.snapshot()
        assert snapshot["count"] == len(samples)
        assert snapshot["sum"] == sum(samples)
        assert snapshot["min"] == min(samples)
        assert snapshot["max"] == max(samples)
        np.testing.assert_allclose(snapshot["mean"], np.mean(samples))
        np.testing.assert_allclose(snapshot["stddev"], np.std(samples))

    def test_empty_histogram_snapshot_is_minimal(self):
        assert MetricsRegistry().histogram("h").snapshot() == {
            "type": "histogram", "count": 0,
        }


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("hits") is registry.counter("hits")

    def test_one_name_one_kind(self):
        registry = MetricsRegistry()
        registry.counter("hits")
        with pytest.raises(ValueError, match="is a Counter"):
            registry.gauge("hits")

    def test_snapshot_is_name_sorted_and_json_ready(self):
        registry = MetricsRegistry()
        registry.counter("z.last").inc()
        registry.gauge("a.first").set(1.0)
        registry.histogram("m.middle").observe(2.0)
        snapshot = registry.snapshot()
        assert list(snapshot) == ["a.first", "m.middle", "z.last"]
        assert json.loads(json.dumps(snapshot)) == snapshot

    def test_reset_clears(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        registry.reset()
        assert registry.snapshot() == {}

    def test_ambient_registry_is_process_wide(self):
        reset_metrics()
        try:
            get_metrics().counter("ambient.test").inc(3)
            assert get_metrics().snapshot()["ambient.test"]["value"] == 3
        finally:
            reset_metrics()


class TestProfiled:
    def test_records_peak_rss(self):
        registry = MetricsRegistry()
        with profiled(registry, prefix="mem"):
            pass
        assert registry.snapshot()["mem.peak_rss_kb"]["value"] > 0

    def test_allocation_tracing_is_opt_in(self):
        registry = MetricsRegistry()
        with profiled(registry):
            list(range(1000))
        assert "profile.peak_traced_bytes" not in registry.snapshot()

        with profiled(registry, trace_allocations=True):
            buffer = np.zeros(1_000_000)
            del buffer
        peak = registry.snapshot()["profile.peak_traced_bytes"]["value"]
        assert peak >= 8_000_000  # the 1M-float array was seen
