"""The live halves of ``python -m repro.obs``: tail, expose, serve, slo.

Exit codes are the contract CI keys on: 0 clean, 1 for a failed gate,
2 for malformed input — always a one-line ``error:`` on stderr, never
a traceback.
"""

from __future__ import annotations

import json
import urllib.request

import pytest

from repro.obs.__main__ import main
from repro.obs.live import (
    CONTENT_TYPE,
    EventLog,
    AppendJsonlSink,
    MetricsServer,
    build_slo_payload,
    serving_stats_from_events,
)
from repro.obs.metrics import MetricsRegistry


@pytest.fixture
def event_log_file(tmp_path):
    """A recorded serving run: requests, one error, a metrics snapshot."""
    path = str(tmp_path / "events.jsonl")
    log = EventLog(AppendJsonlSink(path))
    for index in range(6):
        log.emit(
            "serving.request_done",
            request_id=f"req-1-{index}",
            rows=8,
            seconds=0.002 + 0.0005 * index,
        )
    log.emit("serving.request_error", level="error", rows=8, error="ValueError")
    registry = MetricsRegistry()
    registry.counter("serving.requests").inc(6)
    registry.gauge("serving.in_flight").set(0)
    log.emit_metrics(registry)
    log.close()
    return path


class TestReportTail:
    def test_tail_prints_the_last_n_records(self, event_log_file, capsys):
        assert main(["report", event_log_file, "--tail", "3"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3
        assert json.loads(lines[-1])["event"] == "metrics.snapshot"

    def test_empty_log_is_a_one_line_error(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["report", str(path), "--tail", "5"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "empty event log" in err
        assert err.count("\n") == 1

    def test_mid_file_corruption_is_a_one_line_error(self, tmp_path, capsys):
        path = tmp_path / "torn.jsonl"
        path.write_text('{"event": "a"}\n{"eve\n{"event": "b"}\n')
        assert main(["report", str(path), "--tail", "5"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "invalid JSONL at line 2" in err

    def test_missing_file_is_a_one_line_error(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope.jsonl"), "--tail", "1"]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_torn_final_line_is_tolerated(self, tmp_path, capsys):
        path = tmp_path / "crashed.jsonl"
        path.write_text('{"event": "a"}\n{"event": "b', encoding="utf-8")
        assert main(["report", str(path), "--tail", "5"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert [json.loads(line)["event"] for line in lines] == ["a"]


class TestExpose:
    def test_renders_the_last_snapshot_with_check(
        self, event_log_file, capsys
    ):
        assert main(["expose", event_log_file, "--check"]) == 0
        out = capsys.readouterr().out
        assert "repro_serving_requests_total 6.0" in out
        assert "# TYPE repro_serving_requests_total counter" in out

    def test_writes_to_a_file(self, event_log_file, tmp_path, capsys):
        out_path = str(tmp_path / "metrics.prom")
        assert main(["expose", event_log_file, "-o", out_path, "--check"]) == 0
        assert capsys.readouterr().out.strip() == out_path
        with open(out_path, encoding="utf-8") as handle:
            assert "repro_serving_in_flight 0.0" in handle.read()

    def test_log_without_a_snapshot_is_an_error(self, tmp_path, capsys):
        path = str(tmp_path / "plain.jsonl")
        log = EventLog(AppendJsonlSink(path))
        log.emit("serving.request_done", seconds=0.01)
        log.close()
        assert main(["expose", path]) == 2
        assert "no metrics snapshot" in capsys.readouterr().err


class TestMetricsServer:
    def test_scrape_and_health_endpoints(self):
        registry = MetricsRegistry()
        registry.counter("unit.scrapes").inc(2)
        from repro.obs.live import render_prometheus

        server = MetricsServer(
            lambda: render_prometheus(registry), port=0
        ).start()
        try:
            with urllib.request.urlopen(server.url) as response:
                assert response.status == 200
                assert response.headers["Content-Type"] == CONTENT_TYPE
                body = response.read().decode("utf-8")
            assert "repro_unit_scrapes_total 2.0" in body
            health = f"http://{server.host}:{server.port}/healthz"
            with urllib.request.urlopen(health) as response:
                assert response.read() == b"ok\n"
            missing = f"http://{server.host}:{server.port}/nope"
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(missing)
        finally:
            server.stop()

    def test_render_failure_returns_500(self):
        def broken():
            raise RuntimeError("registry on fire")

        server = MetricsServer(broken, port=0).start()
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(server.url)
            assert excinfo.value.code == 500
        finally:
            server.stop()


class TestSloCommand:
    def _baseline(self, tmp_path, events_path, **budgets):
        from repro.bench.io import write_bench_json
        from repro.obs.live.events import read_event_log

        stats = serving_stats_from_events(read_event_log(events_path))
        payload = build_slo_payload(stats, budgets or None)
        path = str(tmp_path / "SLO_serving.json")
        write_bench_json("SLO_serving", payload, path=path)
        return path

    def test_within_budget_exits_zero(self, event_log_file, tmp_path, capsys):
        baseline = self._baseline(tmp_path, event_log_file, error_rate_max=0.5)
        code = main(
            ["slo", "--baseline", baseline, "--events", event_log_file]
        )
        assert code == 0
        assert "SLO ok" in capsys.readouterr().out

    def test_violation_exits_nonzero_naming_the_metric(
        self, event_log_file, tmp_path, capsys
    ):
        # The recorded log has one error; a zero error budget trips.
        baseline = self._baseline(tmp_path, event_log_file, error_rate_max=0.0)
        code = main(
            ["slo", "--baseline", baseline, "--events", event_log_file]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "SLO VIOLATION" in err
        assert "error_rate" in err

    def test_baseline_recorded_stats_are_the_default_subject(
        self, event_log_file, tmp_path, capsys
    ):
        baseline = self._baseline(tmp_path, event_log_file, error_rate_max=0.5)
        assert main(["slo", "--baseline", baseline]) == 0
        assert "(recorded)" in capsys.readouterr().out

    def test_record_writes_a_valid_baseline(
        self, event_log_file, tmp_path, capsys
    ):
        from repro.bench import read_bench_json, validate_bench_payload

        out = str(tmp_path / "SLO_serving.json")
        code = main(
            [
                "slo", "--record", "--events", event_log_file, "--out", out,
                "--error-rate-max", "0.5",
            ]
        )
        assert code == 0
        payload = read_bench_json(out)
        assert validate_bench_payload("SLO_serving", payload) == []
        assert payload["recorded"]["requests"] == 6
        assert payload["acceptance"]["recorded_within_budgets"] is True

    def test_record_warns_when_the_run_violates_its_own_budgets(
        self, event_log_file, tmp_path, capsys
    ):
        out = str(tmp_path / "SLO_serving.json")
        code = main(["slo", "--record", "--events", event_log_file, "--out", out])
        assert code == 1  # default zero error budget vs the logged error
        assert "violates its own budgets" in capsys.readouterr().err

    def test_record_without_events_is_an_error(self, capsys):
        assert main(["slo", "--record"]) == 2
        assert "needs --events" in capsys.readouterr().err

    def test_missing_baseline_is_an_error(self, tmp_path, capsys):
        assert main(["slo", "--baseline", str(tmp_path / "nope.json")]) == 2
        assert "no such file" in capsys.readouterr().err
