"""Tracing through the experiment runner: serial/parallel merge parity.

The tentpole contract: a traced grid run produces ONE merged JSONL
whether cells run in-process or on pool workers - worker spans ship
back with the cell payload, get re-parented under the ``run`` span, and
are tagged with the cell's content address.  Values stay bit-identical
with tracing on or off (the spans measure, they never steer).
"""

from __future__ import annotations

import pytest

from repro.obs import build_tree, coverage, read_events
from repro.runner import RunnerConfig, run_grid
from repro.runner.grids import table_iv_grid

TINY = dict(
    methods=("mean", "knn"), datasets=("lake",),
    missing_rate=0.1, n_runs=2, fast=True,
)


def _traced_run(tmp_path, jobs):
    path = str(tmp_path / f"jobs{jobs}.jsonl")
    outcome = run_grid(
        table_iv_grid(**TINY), RunnerConfig(jobs=jobs, trace_path=path)
    )
    return outcome, read_events(path)


def _spans(events):
    return [e for e in events if e.get("type") == "span"]


class TestSerialTrace:
    def test_run_owns_cells_and_coverage_is_total(self, tmp_path):
        outcome, events = _traced_run(tmp_path, jobs=1)
        tree = build_tree(events)
        run = tree.children["run"]
        assert run.children["cell"].count == 4
        assert "fit_impute" in run.children["cell"].children
        assert "assemble" in run.children
        assert coverage(events)["fraction"] >= 0.95
        assert outcome.manifest["trace"]["events"] == len(events)

    def test_values_identical_with_tracing_off(self, tmp_path):
        traced_outcome, _ = _traced_run(tmp_path, jobs=1)
        assert traced_outcome.value == run_grid(table_iv_grid(**TINY)).value


class TestParallelMerge:
    def test_worker_spans_reparent_under_run(self, tmp_path):
        _, events = _traced_run(tmp_path, jobs=2)
        spans = _spans(events)
        ids = [span["span_id"] for span in spans]
        assert len(ids) == len(set(ids))  # merged stream, no aliasing
        assert len({span["pid"] for span in spans}) >= 2  # really multi-process
        run = build_tree(events).children["run"]
        assert run.children["cell"].count == 4
        assert coverage(events)["fraction"] >= 0.95

    def test_worker_cell_spans_are_key_tagged(self, tmp_path):
        from repro.runner import cache_key

        grid = table_iv_grid(**TINY)
        keys = {cache_key(spec) for spec in grid.cells}
        _, events = _traced_run(tmp_path, jobs=2)
        tagged = {
            span["attrs"]["cell_key"]
            for span in _spans(events)
            if span["name"] == "cell"
        }
        assert tagged == keys

    def test_parallel_trace_matches_serial_shape_and_values(self, tmp_path):
        serial_outcome, serial_events = _traced_run(tmp_path, jobs=1)
        parallel_outcome, parallel_events = _traced_run(tmp_path, jobs=2)
        assert parallel_outcome.value == serial_outcome.value

        def shape(events):
            def walk(node):
                return {
                    name: (child.count, walk(child))
                    for name, child in node.children.items()
                }
            return walk(build_tree(events))

        assert shape(parallel_events) == shape(serial_events)


class TestCacheHitsInTrace:
    def test_warm_run_emits_instant_cell_spans(self, tmp_path):
        grid = table_iv_grid(**TINY)
        cache_dir = str(tmp_path / "cache")
        run_grid(grid, RunnerConfig(cache_dir=cache_dir))
        path = str(tmp_path / "warm.jsonl")
        outcome = run_grid(
            grid, RunnerConfig(cache_dir=cache_dir, trace_path=path)
        )
        cells = [s for s in _spans(read_events(path)) if s["name"] == "cell"]
        assert len(cells) == 4
        assert all(cell["attrs"]["cache_hit"] for cell in cells)
        metrics = outcome.manifest["metrics"]
        assert metrics["runner.cache.hits"]["value"] == 4
        assert metrics["runner.cells.executed"]["value"] == 0


class TestManifestMetrics:
    def test_metrics_section_counts_work(self, tmp_path):
        outcome = run_grid(table_iv_grid(**TINY), RunnerConfig())
        metrics = outcome.manifest["metrics"]
        assert metrics["runner.cells.total"]["value"] == 4
        assert metrics["runner.cells.executed"]["value"] == 4
        assert metrics["runner.cell.wall_seconds"]["count"] == 4
        assert "trace" not in outcome.manifest or outcome.manifest["trace"] is None

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_metrics_event_lands_in_trace(self, tmp_path, jobs):
        _, events = _traced_run(tmp_path, jobs=jobs)
        (metrics_event,) = [e for e in events if e.get("type") == "metrics"]
        assert metrics_event["values"]["runner.cells.total"]["value"] == 4
