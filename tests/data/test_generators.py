"""Unit tests for the four dataset generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import make_economic, make_farm, make_lake, make_vehicle

GENERATORS = {
    "economic": (make_economic, 13),
    "farm": (make_farm, 13),
    "lake": (make_lake, 7),
    "vehicle": (make_vehicle, 7),
}


@pytest.mark.parametrize("name", sorted(GENERATORS))
class TestGeneratorContracts:
    def test_shape_and_columns(self, name):
        generator, n_cols = GENERATORS[name]
        data = generator(n_rows=120, random_state=0)
        assert data.n_rows == 120
        assert data.n_cols == n_cols
        assert data.n_spatial == 2
        assert len(data.column_names) == n_cols

    def test_deterministic(self, name):
        generator, _ = GENERATORS[name]
        a = generator(n_rows=60, random_state=5)
        b = generator(n_rows=60, random_state=5)
        assert np.allclose(a.values, b.values)

    def test_different_seeds_differ(self, name):
        generator, _ = GENERATORS[name]
        a = generator(n_rows=60, random_state=1)
        b = generator(n_rows=60, random_state=2)
        assert not np.allclose(a.values, b.values)

    def test_finite_values(self, name):
        generator, _ = GENERATORS[name]
        data = generator(n_rows=100, random_state=0)
        assert np.isfinite(data.values).all()

    def test_labels_align(self, name):
        generator, _ = GENERATORS[name]
        data = generator(n_rows=100, random_state=0)
        assert data.labels is not None
        assert data.labels.shape == (100,)
        assert data.labels.min() >= 0

    def test_spatially_clustered(self, name):
        # Within-cluster location variance should be well below the
        # total variance (the generators sample from spatial mixtures).
        generator, _ = GENERATORS[name]
        data = generator(n_rows=200, random_state=0)
        labels = data.labels
        total_var = data.spatial.var(axis=0).sum()
        within = 0.0
        for c in np.unique(labels):
            members = data.spatial[labels == c]
            within += members.var(axis=0).sum() * members.shape[0]
        within /= data.n_rows
        assert within < 0.6 * total_var


class TestVehicleSemantics:
    def test_fuel_rate_correlates_with_elevation(self):
        data = make_vehicle(n_rows=600, random_state=0)
        fuel = data.values[:, data.column_names.index("fuel_consumption_rate")]
        elevation = data.values[:, data.column_names.index("elevation")]
        corr = np.corrcoef(fuel, elevation)[0, 1]
        assert corr > 0.2

    def test_east_lower_elevation(self):
        # Figure 1: the east region sits at lower altitude.
        data = make_vehicle(n_rows=600, random_state=0)
        lon = data.values[:, 1]
        elevation = data.values[:, data.column_names.index("elevation")]
        corr = np.corrcoef(lon, elevation)[0, 1]
        assert corr < -0.2
