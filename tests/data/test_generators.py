"""Unit tests for the four dataset generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import make_economic, make_farm, make_lake, make_vehicle

GENERATORS = {
    "economic": (make_economic, 13),
    "farm": (make_farm, 13),
    "lake": (make_lake, 7),
    "vehicle": (make_vehicle, 7),
}


@pytest.mark.parametrize("name", sorted(GENERATORS))
class TestGeneratorContracts:
    def test_shape_and_columns(self, name):
        generator, n_cols = GENERATORS[name]
        data = generator(n_rows=120, random_state=0)
        assert data.n_rows == 120
        assert data.n_cols == n_cols
        assert data.n_spatial == 2
        assert len(data.column_names) == n_cols

    def test_deterministic(self, name):
        generator, _ = GENERATORS[name]
        a = generator(n_rows=60, random_state=5)
        b = generator(n_rows=60, random_state=5)
        assert np.allclose(a.values, b.values)

    def test_different_seeds_differ(self, name):
        generator, _ = GENERATORS[name]
        a = generator(n_rows=60, random_state=1)
        b = generator(n_rows=60, random_state=2)
        assert not np.allclose(a.values, b.values)

    def test_finite_values(self, name):
        generator, _ = GENERATORS[name]
        data = generator(n_rows=100, random_state=0)
        assert np.isfinite(data.values).all()

    def test_labels_align(self, name):
        generator, _ = GENERATORS[name]
        data = generator(n_rows=100, random_state=0)
        assert data.labels is not None
        assert data.labels.shape == (100,)
        assert data.labels.min() >= 0

    def test_spatially_clustered(self, name):
        # Within-cluster location variance should be well below the
        # total variance (the generators sample from spatial mixtures).
        generator, _ = GENERATORS[name]
        data = generator(n_rows=200, random_state=0)
        labels = data.labels
        total_var = data.spatial.var(axis=0).sum()
        within = 0.0
        for c in np.unique(labels):
            members = data.spatial[labels == c]
            within += members.var(axis=0).sum() * members.shape[0]
        within /= data.n_rows
        assert within < 0.6 * total_var


class TestVehicleSemantics:
    def test_fuel_rate_correlates_with_elevation(self):
        data = make_vehicle(n_rows=600, random_state=0)
        fuel = data.values[:, data.column_names.index("fuel_consumption_rate")]
        elevation = data.values[:, data.column_names.index("elevation")]
        corr = np.corrcoef(fuel, elevation)[0, 1]
        assert corr > 0.2

    def test_east_lower_elevation(self):
        # Figure 1: the east region sits at lower altitude.
        data = make_vehicle(n_rows=600, random_state=0)
        lon = data.values[:, 1]
        elevation = data.values[:, data.column_names.index("elevation")]
        corr = np.corrcoef(lon, elevation)[0, 1]
        assert corr < -0.2


class TestPlantedLowRank:
    def _make(self, **kwargs):
        from repro.data import make_planted_lowrank

        defaults = dict(n_rows=120, n_cols=10, rank=4, random_state=0)
        defaults.update(kwargs)
        return make_planted_lowrank(**defaults)

    def test_shape_and_columns(self):
        dataset = self._make()
        assert dataset.values.shape == (120, 10)
        assert list(dataset.spatial_columns) == [0, 1]
        assert list(dataset.attribute_columns) == list(range(2, 10))

    def test_parametric_in_every_dimension(self):
        dataset = self._make(n_rows=64, n_cols=5, rank=2)
        assert dataset.values.shape == (64, 5)

    def test_deterministic_and_seed_sensitive(self):
        first = self._make()
        second = self._make()
        np.testing.assert_array_equal(first.values, second.values)
        other = self._make(random_state=1)
        assert not np.array_equal(first.values, other.values)

    def test_accepts_generator_instance(self):
        seeded = self._make(random_state=np.random.default_rng(9))
        again = self._make(random_state=np.random.default_rng(9))
        np.testing.assert_array_equal(seeded.values, again.values)

    def test_planted_rank_dominates_spectrum(self):
        # With zero noise the attribute block is exactly rank K.
        dataset = self._make(n_rows=200, n_cols=12, rank=3, noise=0.0)
        attrs = dataset.values[:, dataset.attribute_columns]
        singular = np.linalg.svd(attrs, compute_uv=False)
        assert singular[3] < 1e-8 * singular[0]

    def test_nonnegative_finite_and_in_unit_square(self):
        dataset = self._make(noise=0.3)
        assert np.isfinite(dataset.values).all()
        assert (dataset.values >= 0.0).all()
        spatial = dataset.values[:, dataset.spatial_columns]
        assert spatial.min() >= 0.0 and spatial.max() <= 1.0

    def test_rows_cluster_around_landmarks(self):
        dataset = self._make(n_rows=300, rank=5)
        labels = dataset.labels
        assert labels is not None and set(labels) == set(range(5))
