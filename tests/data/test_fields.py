"""Unit tests for the RBF spatial fields."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import RBFField, make_smooth_field


BOUNDS = np.array([[0.0, 1.0], [0.0, 1.0]])


class TestRBFField:
    def test_evaluates_mixture(self):
        field = RBFField(
            centers=np.array([[0.0, 0.0]]),
            amplitudes=np.array([2.0]),
            length_scales=np.array([1.0]),
            offset=1.0,
        )
        assert field(np.array([[0.0, 0.0]]))[0] == pytest.approx(3.0)
        far = field(np.array([[100.0, 100.0]]))[0]
        assert far == pytest.approx(1.0, abs=1e-6)

    def test_rejects_mismatched_amplitudes(self):
        with pytest.raises(ValueError, match="one entry per center"):
            RBFField(
                centers=np.zeros((2, 2)),
                amplitudes=np.array([1.0]),
                length_scales=np.array([1.0, 1.0]),
            )

    def test_rejects_nonpositive_scales(self):
        with pytest.raises(ValueError, match="positive"):
            RBFField(
                centers=np.zeros((1, 2)),
                amplitudes=np.array([1.0]),
                length_scales=np.array([0.0]),
            )

    def test_immutable(self):
        field = RBFField(
            centers=np.zeros((1, 2)),
            amplitudes=np.array([1.0]),
            length_scales=np.array([1.0]),
        )
        with pytest.raises(ValueError):
            field.amplitudes[0] = 5.0


class TestMakeSmoothField:
    def test_deterministic(self):
        a = make_smooth_field(BOUNDS, random_state=0)
        b = make_smooth_field(BOUNDS, random_state=0)
        pts = np.array([[0.3, 0.7], [0.9, 0.1]])
        assert np.allclose(a(pts), b(pts))

    def test_centers_inside_bounds(self):
        field = make_smooth_field(BOUNDS, n_bumps=20, random_state=1)
        assert (field.centers >= 0.0).all() and (field.centers <= 1.0).all()

    def test_smoothness(self):
        # Nearby points give nearby values: finite difference is bounded
        # by a modest Lipschitz constant for unit-amplitude fields.
        field = make_smooth_field(BOUNDS, n_bumps=8, amplitude=1.0, random_state=2)
        rng = np.random.default_rng(0)
        pts = rng.random((200, 2))
        eps = 1e-4
        shifted = pts + np.array([eps, 0.0])
        gradient = np.abs(field(shifted) - field(pts)) / eps
        assert gradient.max() < 50.0

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError, match="low < high"):
            make_smooth_field(np.array([[1.0, 0.0], [0.0, 1.0]]))

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError, match=r"\(L, 2\)"):
            make_smooth_field(np.array([[0.0, 1.0, 2.0]]))

    def test_offset_applied(self):
        field = make_smooth_field(BOUNDS, amplitude=0.0, offset=5.0, random_state=0)
        assert field(np.array([[0.5, 0.5]]))[0] == pytest.approx(5.0)
