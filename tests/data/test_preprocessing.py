"""Unit tests for the Section IV-A1 pre-processing steps."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    MinMaxScaler,
    extract_complete_holdout,
    filter_complete_rows,
    minmax_normalize,
)
from repro.exceptions import DegenerateDataError, NotFittedError


class TestMinMaxScaler:
    def test_range_is_unit_interval(self, rng):
        x = rng.normal(size=(30, 4)) * 10 + 5
        out = MinMaxScaler().fit_transform(x)
        assert out.min() >= -1e-12
        assert out.max() <= 1 + 1e-12
        assert out.min(axis=0) == pytest.approx(np.zeros(4), abs=1e-12)
        assert out.max(axis=0) == pytest.approx(np.ones(4), abs=1e-12)

    def test_roundtrip(self, rng):
        x = rng.normal(size=(20, 3))
        scaler = MinMaxScaler()
        out = scaler.fit_transform(x)
        assert np.allclose(scaler.inverse_transform(out), x)

    def test_constant_column(self):
        x = np.column_stack([np.full(5, 7.0), np.arange(5, dtype=float)])
        scaler = MinMaxScaler()
        out = scaler.fit_transform(x)
        assert np.allclose(out[:, 0], 0.0)
        assert np.allclose(scaler.inverse_transform(out)[:, 0], 7.0)

    def test_nan_passthrough(self):
        x = np.array([[1.0, np.nan], [3.0, 2.0], [5.0, 4.0]])
        out = MinMaxScaler().fit_transform(x)
        assert np.isnan(out[0, 1])
        assert out[0, 0] == pytest.approx(0.0)

    def test_all_nan_column_raises(self):
        x = np.array([[1.0, np.nan], [2.0, np.nan]])
        with pytest.raises(DegenerateDataError, match="no observed"):
            MinMaxScaler().fit(x)

    def test_transform_before_fit(self):
        with pytest.raises(NotFittedError):
            MinMaxScaler().transform(np.zeros((2, 2)))

    def test_column_count_checked(self, rng):
        scaler = MinMaxScaler().fit(rng.random((5, 3)))
        with pytest.raises(DegenerateDataError, match="columns"):
            scaler.transform(rng.random((5, 4)))

    def test_minmax_normalize_helper(self, rng):
        x = rng.normal(size=(10, 2))
        assert np.allclose(minmax_normalize(x), MinMaxScaler().fit_transform(x))


class TestFilterCompleteRows:
    def test_drops_nan_rows(self):
        x = np.array([[1.0, 2.0], [np.nan, 3.0], [4.0, 5.0]])
        out = filter_complete_rows(x)
        assert out.shape == (2, 2)

    def test_all_incomplete_raises(self):
        x = np.array([[np.nan, 1.0], [2.0, np.nan]])
        with pytest.raises(DegenerateDataError, match="no complete rows"):
            filter_complete_rows(x)


class TestExtractCompleteHoldout:
    def test_partition(self):
        holdout, rest = extract_complete_holdout(500, 100, random_state=0)
        assert holdout.size == 100
        assert rest.size == 400
        assert np.intersect1d(holdout, rest).size == 0
        assert np.union1d(holdout, rest).size == 500

    def test_small_dataset_shrinks_holdout(self):
        holdout, rest = extract_complete_holdout(40, 100, random_state=0)
        assert holdout.size == 10  # a quarter of the rows
        assert rest.size == 30

    def test_deterministic(self):
        a, _ = extract_complete_holdout(200, 50, random_state=3)
        b, _ = extract_complete_holdout(200, 50, random_state=3)
        assert np.array_equal(a, b)

    def test_sorted(self):
        holdout, rest = extract_complete_holdout(100, 20, random_state=0)
        assert np.array_equal(holdout, np.sort(holdout))
        assert np.array_equal(rest, np.sort(rest))
