"""Unit tests for SpatialDataset."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import SpatialDataset
from repro.exceptions import ValidationError


@pytest.fixture
def dataset(rng) -> SpatialDataset:
    return SpatialDataset(
        values=rng.random((20, 5)),
        n_spatial=2,
        name="demo",
        labels=rng.integers(0, 3, size=20),
    )


class TestSpatialDataset:
    def test_shapes(self, dataset):
        assert dataset.n_rows == 20
        assert dataset.n_cols == 5
        assert dataset.spatial.shape == (20, 2)
        assert dataset.attributes.shape == (20, 3)

    def test_column_index_helpers(self, dataset):
        assert dataset.spatial_columns == (0, 1)
        assert dataset.attribute_columns == (2, 3, 4)

    def test_default_column_names(self, dataset):
        assert dataset.column_names == ("si_0", "si_1", "attr_0", "attr_1", "attr_2")

    def test_custom_column_names_length_checked(self, rng):
        with pytest.raises(ValidationError, match="column_names"):
            SpatialDataset(
                values=rng.random((5, 3)), n_spatial=2, column_names=("a", "b")
            )

    def test_labels_length_checked(self, rng):
        with pytest.raises(ValidationError, match="labels"):
            SpatialDataset(
                values=rng.random((5, 3)), n_spatial=2, labels=np.zeros(4, dtype=int)
            )

    def test_values_immutable(self, dataset):
        with pytest.raises(ValueError):
            dataset.values[0, 0] = 99.0

    def test_n_spatial_must_leave_attributes(self, rng):
        with pytest.raises(ValidationError):
            SpatialDataset(values=rng.random((5, 2)), n_spatial=2)

    def test_subsample(self, dataset):
        sub = dataset.subsample(7, random_state=0)
        assert sub.n_rows == 7
        assert sub.labels is not None and sub.labels.shape == (7,)
        assert sub.column_names == dataset.column_names

    def test_subsample_too_large(self, dataset):
        with pytest.raises(ValidationError, match="cannot subsample"):
            dataset.subsample(100)

    def test_subsample_rows_come_from_original(self, dataset):
        sub = dataset.subsample(5, random_state=1)
        original_rows = {tuple(row) for row in dataset.values}
        for row in sub.values:
            assert tuple(row) in original_rows

    def test_with_values(self, dataset, rng):
        replacement = rng.random((20, 5))
        out = dataset.with_values(replacement)
        assert np.allclose(out.values, replacement)
        assert out.name == dataset.name

    def test_with_values_shape_checked(self, dataset, rng):
        with pytest.raises(ValidationError, match="shape"):
            dataset.with_values(rng.random((3, 3)))
