"""Unit tests for the dataset registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import DATASET_NAMES, load_dataset
from repro.exceptions import ValidationError


class TestLoadDataset:
    def test_names_exposed(self):
        assert set(DATASET_NAMES) == {"economic", "farm", "lake", "vehicle"}

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_normalized_by_default(self, name):
        data = load_dataset(name, n_rows=80)
        assert data.values.min() >= -1e-12
        assert data.values.max() <= 1 + 1e-12

    def test_default_seed_pins_instance(self):
        a = load_dataset("lake", n_rows=50)
        b = load_dataset("lake", n_rows=50)
        assert np.allclose(a.values, b.values)

    def test_raw_mode(self):
        data = load_dataset("lake", n_rows=50, normalize=False)
        # Raw latitudes for the lake box are in the 41-49 range.
        assert data.values[:, 0].min() > 40.0

    def test_case_insensitive(self):
        data = load_dataset("LAKE", n_rows=30)
        assert data.name == "lake"

    def test_unknown_name(self):
        with pytest.raises(ValidationError, match="unknown dataset"):
            load_dataset("mars")

    def test_n_rows_override(self):
        assert load_dataset("farm", n_rows=123).n_rows == 123
