"""repro.hashing: one canonicalisation, two consumers.

The runner cache and the artifact store must agree forever on what
"the hash of this payload" means; these tests pin the shared rules -
key-order independence, NaN rejection, dtype/shape injectivity - and
that both consumers actually route through this module.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.hashing import array_digest, canonical_json, content_hash, sha256_text


class TestCanonicalJson:
    def test_key_order_independent(self):
        assert canonical_json({"b": 1, "a": {"d": 2, "c": 3}}) == canonical_json(
            {"a": {"c": 3, "d": 2}, "b": 1}
        )

    def test_minified(self):
        assert canonical_json({"a": [1, 2]}) == '{"a":[1,2]}'

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            canonical_json({"x": float("nan")})


class TestArrayDigest:
    def test_bit_identical_arrays_agree(self):
        a = np.arange(6.0).reshape(2, 3)
        assert array_digest(a) == array_digest(a.copy())

    def test_shape_is_part_of_identity(self):
        a = np.arange(4.0)
        assert array_digest(a) != array_digest(a.reshape(2, 2))

    def test_dtype_is_part_of_identity(self):
        a = np.arange(4, dtype=np.float64)
        assert array_digest(a) != array_digest(a.astype(np.float32))

    def test_noncontiguous_views_hash_by_content(self):
        a = np.arange(12.0).reshape(3, 4)
        assert array_digest(a.T) == array_digest(np.ascontiguousarray(a.T))


class TestContentHash:
    def test_stable_across_orderings(self):
        arrays = {"u": np.ones((2, 2)), "v": np.zeros(3)}
        swapped = {"v": np.zeros(3), "u": np.ones((2, 2))}
        assert content_hash({"k": 1}, arrays) == content_hash({"k": 1}, swapped)

    def test_sensitive_to_metadata_and_arrays(self):
        arrays = {"u": np.ones(2)}
        base = content_hash({"k": 1}, arrays)
        assert base != content_hash({"k": 2}, arrays)
        nudged = np.nextafter(np.ones(2), 2.0)  # one ulp: a real bit change
        assert base != content_hash({"k": 1}, {"u": nudged})
        assert base == content_hash({"k": 1}, {"u": np.ones(2)})


class TestConsumersShareTheRules:
    def test_runner_cache_key_uses_canonical_json(self):
        from repro.runner import cache_key
        from repro.versioning import NUMERICS_VERSION, __version__

        config = {"kind": "x", "params": {"b": 1, "a": 2}}
        reordered = {"params": {"a": 2, "b": 1}, "kind": "x"}
        assert cache_key(config) == cache_key(reordered)
        # The key is the shared canonical text plus the version salts.
        text = (
            canonical_json(config)
            + "\n" + __version__
            + f"\nnumerics:{NUMERICS_VERSION}"
        )
        assert cache_key(config) == sha256_text(text)

    def test_artifact_hash_matches_manual_recomputation(self, tmp_path):
        from repro.model import FittedModel, save_model
        from repro.model.artifact import _hashed_metadata, _model_arrays

        model = FittedModel(
            method="nmf", u=np.ones((3, 2)), v=np.ones((2, 4)), rank=2
        )
        info = save_model(model, str(tmp_path / "m"))
        manual = content_hash(_hashed_metadata(model), _model_arrays(model))
        assert info["content_hash"] == manual


class TestPayloadDigest:
    def test_matches_manual_composition(self):
        from repro.hashing import canonical_json, payload_digest, sha256_text

        payload = {"b": [1, 2], "a": {"x": 0.5}}
        assert payload_digest(payload) == sha256_text(canonical_json(payload))

    def test_key_order_independent(self):
        from repro.hashing import payload_digest

        assert payload_digest({"a": 1, "b": 2}) == payload_digest({"b": 2, "a": 1})
        assert payload_digest({"a": 1}) != payload_digest({"a": 2})

    def test_digest_head_prefix(self):
        from repro.hashing import digest_head, payload_digest

        digest = payload_digest({"a": 1})
        assert digest_head(digest) == digest[:12]
        assert digest_head(digest, 4) == digest[:4]
