"""Unit tests for the vehicle route-planning application (Figure 4a)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import (
    Route,
    generate_routes,
    route_fuel_consumption,
    route_planning_error,
)
from repro.exceptions import ValidationError


class TestRoute:
    def test_requires_two_waypoints(self):
        with pytest.raises(ValidationError, match="two waypoints"):
            Route(waypoints=(3,))

    def test_coerces_ints(self):
        route = Route(waypoints=(np.int64(1), np.int64(2)))
        assert route.waypoints == (1, 2)


class TestGenerateRoutes:
    def test_counts_and_lengths(self, rng):
        locations = rng.random((50, 2))
        routes = generate_routes(locations, 5, route_length=6, random_state=0)
        assert len(routes) == 5
        for route in routes:
            assert len(route.waypoints) == 6

    def test_no_repeated_waypoints(self, rng):
        locations = rng.random((50, 2))
        routes = generate_routes(locations, 5, route_length=8, random_state=1)
        for route in routes:
            assert len(set(route.waypoints)) == len(route.waypoints)

    def test_hops_are_local(self, rng):
        locations = rng.random((100, 2))
        routes = generate_routes(locations, 3, route_length=5, random_state=0)
        all_dists = np.linalg.norm(
            locations[:, None] - locations[None], axis=2
        )
        typical = np.median(all_dists)
        for route in routes:
            for a, b in zip(route.waypoints, route.waypoints[1:]):
                assert all_dists[a, b] < typical

    def test_route_longer_than_data_rejected(self, rng):
        with pytest.raises(ValidationError, match="exceeds"):
            generate_routes(rng.random((4, 2)), 1, route_length=5)

    def test_deterministic(self, rng):
        locations = rng.random((30, 2))
        a = generate_routes(locations, 4, random_state=3)
        b = generate_routes(locations, 4, random_state=3)
        assert [r.waypoints for r in a] == [r.waypoints for r in b]


class TestRouteFuelConsumption:
    def test_trapezoid_on_one_leg(self):
        locations = np.array([[0.0, 0.0], [3.0, 4.0]])
        rates = np.array([2.0, 4.0])
        consumption = route_fuel_consumption(Route((0, 1)), locations, rates)
        assert consumption == pytest.approx(0.5 * (2 + 4) * 5.0)

    def test_additive_over_legs(self):
        locations = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]])
        rates = np.array([1.0, 1.0, 1.0])
        consumption = route_fuel_consumption(Route((0, 1, 2)), locations, rates)
        assert consumption == pytest.approx(2.0)

    def test_rate_vector_validated(self):
        locations = np.array([[0.0, 0.0], [1.0, 0.0]])
        with pytest.raises(ValidationError, match="aligned"):
            route_fuel_consumption(Route((0, 1)), locations, np.array([1.0]))


class TestRoutePlanningError:
    def test_zero_for_perfect_imputation(self, rng):
        locations = rng.random((20, 2))
        rates = rng.random(20)
        routes = generate_routes(locations, 4, route_length=5, random_state=0)
        assert route_planning_error(routes, locations, rates, rates) == 0.0

    def test_scales_with_rate_error(self, rng):
        locations = rng.random((20, 2))
        rates = rng.random(20)
        routes = generate_routes(locations, 4, route_length=5, random_state=0)
        small = route_planning_error(routes, locations, rates, rates + 0.01)
        large = route_planning_error(routes, locations, rates, rates + 0.1)
        assert large > small

    def test_empty_routes_rejected(self, rng):
        with pytest.raises(ValidationError, match="non-empty"):
            route_planning_error([], rng.random((5, 2)), np.ones(5), np.ones(5))
