"""Unit tests for the clustering-with-missing-values application."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import cluster_with_missing_values, clustering_application_accuracy
from repro.baselines import MeanImputer
from repro.core import SMFL
from repro.exceptions import ValidationError
from repro.masking import MissingSpec, inject_missing


@pytest.fixture
def labelled_problem(tiny_dataset):
    x_missing, mask = inject_missing(
        tiny_dataset.values,
        MissingSpec(missing_rate=0.1, columns=tiny_dataset.attribute_columns),
        random_state=0,
    )
    return tiny_dataset, x_missing, mask


class TestClusterWithMissingValues:
    def test_kmeans_path(self, labelled_problem):
        dataset, x_missing, mask = labelled_problem
        labels = cluster_with_missing_values(
            MeanImputer(), x_missing, mask, 4, random_state=0
        )
        assert labels.shape == (dataset.n_rows,)
        assert set(np.unique(labels)) <= set(range(4))

    def test_pca_path(self, labelled_problem):
        _, x_missing, mask = labelled_problem
        labels = cluster_with_missing_values(
            MeanImputer(), x_missing, mask, 3, pca_components=2, random_state=0
        )
        assert np.unique(labels).size <= 3

    def test_coefficient_path(self, labelled_problem):
        dataset, x_missing, mask = labelled_problem
        model = SMFL(rank=5, n_spatial=2, random_state=0, max_iter=60)
        labels = cluster_with_missing_values(
            model, x_missing, mask, 4, use_coefficients=True, random_state=0
        )
        assert labels.shape == (dataset.n_rows,)

    def test_coefficient_path_requires_mf_model(self, labelled_problem):
        _, x_missing, mask = labelled_problem
        with pytest.raises(ValidationError, match="coefficient"):
            cluster_with_missing_values(
                MeanImputer(), x_missing, mask, 3, use_coefficients=True
            )


class TestClusteringApplicationAccuracy:
    def test_accuracy_in_unit_interval(self, labelled_problem):
        dataset, x_missing, mask = labelled_problem
        accuracy = clustering_application_accuracy(
            MeanImputer(), x_missing, mask, dataset.labels, random_state=0
        )
        assert 0.0 <= accuracy <= 1.0

    def test_smfl_beats_chance(self, labelled_problem):
        dataset, x_missing, mask = labelled_problem
        model = SMFL(rank=5, n_spatial=2, random_state=0)
        accuracy = clustering_application_accuracy(
            model, x_missing, mask, dataset.labels,
            use_coefficients=True, random_state=0,
        )
        n_classes = np.unique(dataset.labels).size
        assert accuracy > 1.5 / n_classes
