"""Integration tests: the paper's headline claims at experiment scale.

These run the real experiment harness (official row counts, 3 of the 5
paper repetitions to bound runtime) and assert the orderings the paper
reports.  The full 5-run numbers are recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import figure_5
from repro.experiments.protocol import DATASET_RANKS, average_rms

RUNS = 3


@pytest.fixture(scope="module")
def lake_rms():
    methods = ("knn", "dlm", "iterative", "nmf", "smf", "smfl")
    return {m: average_rms(m, "lake", n_runs=RUNS) for m in methods}


class TestTableIVHeadline:
    def test_smfl_beats_all_core_competitors_on_lake(self, lake_rms):
        for method, rms in lake_rms.items():
            if method == "smfl":
                continue
            assert lake_rms["smfl"] < rms, (
                f"smfl={lake_rms['smfl']:.4f} not below {method}={rms:.4f}"
            )

    def test_mf_family_ordering_on_lake(self, lake_rms):
        assert lake_rms["smfl"] < lake_rms["smf"] < lake_rms["nmf"]

    def test_mf_family_ordering_on_vehicle(self):
        values = {
            m: average_rms(m, "vehicle", n_runs=RUNS)
            for m in ("nmf", "smf", "smfl")
        }
        assert values["smfl"] < values["smf"] < values["nmf"]


class TestTableVIIShape:
    def test_smfl_degrades_gracefully_with_missing_rate(self):
        low = average_rms("smfl", "lake", missing_rate=0.1, n_runs=RUNS)
        high = average_rms("smfl", "lake", missing_rate=0.5, n_runs=RUNS)
        assert high < 3.0 * low  # graceful, not catastrophic
        assert high > 0

    def test_smfl_leads_smf_across_rates(self):
        for rate in (0.1, 0.3, 0.5):
            smfl = average_rms("smfl", "lake", missing_rate=rate, n_runs=RUNS)
            smf = average_rms("smf", "lake", missing_rate=rate, n_runs=RUNS)
            assert smfl < smf * 1.02, f"rate={rate}: smfl={smfl}, smf={smf}"


class TestFigure5Geometry:
    def test_landmarks_inside_box_smf_drifts(self):
        result = figure_5(rank=5, seed=0, fast=True)
        assert result["smfl_inside_fraction"] == 1.0
        # At least one SMF variant leaves the observation box, which is
        # the paper's Figure 5 phenomenon.
        drifted = min(
            result["smf_gd_inside_fraction"], result["smf_multi_inside_fraction"]
        )
        assert drifted < 1.0


class TestEndToEndPipelines:
    def test_nan_input_full_pipeline(self):
        from repro import SMFL
        from repro.data import load_dataset

        data = load_dataset("lake", n_rows=120)
        x = data.values.copy()
        rng = np.random.default_rng(0)
        rows = rng.integers(0, 120, size=30)
        cols = rng.integers(2, 7, size=30)
        x[rows, cols] = np.nan
        model = SMFL(rank=5, n_spatial=2, random_state=0)
        imputed = model.fit_impute(x)
        assert np.isfinite(imputed).all()
        observed = ~np.isnan(x)
        assert np.allclose(imputed[observed], x[observed])

    def test_repair_pipeline_end_to_end(self):
        from repro.baselines import make_imputer
        from repro.data import load_dataset
        from repro.masking import ErrorSpec, inject_errors
        from repro.metrics import rms_over_mask
        from repro.repair import MFRepairer, OracleDetector

        data = load_dataset("vehicle", n_rows=150)
        x_dirty, dirty = inject_errors(
            data.values, ErrorSpec(error_rate=0.1), random_state=0
        )
        detector = OracleDetector(dirty)
        repairer = MFRepairer(
            make_imputer("smfl", n_spatial=2, rank=6, random_state=0)
        )
        fixed = repairer.repair(x_dirty, detector.detect(x_dirty))
        assert rms_over_mask(fixed, data.values, dirty) < rms_over_mask(
            x_dirty, data.values, dirty
        )

    def test_route_application_prefers_good_imputation(self):
        from repro.apps import generate_routes, route_planning_error
        from repro.baselines import make_imputer
        from repro.experiments.protocol import prepare_trial

        trial = prepare_trial("vehicle", missing_rate=0.2, seed=0, fast=True)
        data = trial.dataset
        fuel_col = data.column_names.index("fuel_consumption_rate")
        routes = generate_routes(data.spatial, 20, random_state=0)
        errors = {}
        for method in ("mean", "smfl"):
            imputer = make_imputer(
                method, n_spatial=2, rank=DATASET_RANKS["vehicle"], random_state=0
            )
            estimate = imputer.fit_impute(trial.x_missing, trial.mask)
            errors[method] = route_planning_error(
                routes, data.spatial,
                data.values[:, fuel_col], estimate[:, fuel_col],
            )
        assert errors["smfl"] < errors["mean"]

    def test_clustering_application_smfl_competitive(self):
        from repro.apps import clustering_application_accuracy
        from repro.baselines import make_imputer
        from repro.experiments.protocol import prepare_trial

        trial = prepare_trial("lake", missing_rate=0.1, seed=0, fast=True)
        data = trial.dataset
        assert data.labels is not None
        mean_acc = clustering_application_accuracy(
            make_imputer("mean", random_state=0),
            trial.x_missing, trial.mask, data.labels,
            pca_components=3, random_state=0,
        )
        smfl_acc = clustering_application_accuracy(
            make_imputer("smfl", n_spatial=2, rank=6, random_state=0),
            trial.x_missing, trial.mask, data.labels,
            use_coefficients=True, random_state=0,
        )
        assert smfl_acc >= mean_acc - 0.05
