"""Unit tests for repro.validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.validation import (
    as_matrix,
    as_vector,
    check_finite,
    check_in_range,
    check_mask,
    check_nonnegative,
    check_positive_int,
    check_rank,
    check_spatial_columns,
    resolve_rng,
)


class TestAsMatrix:
    def test_accepts_list_of_lists(self):
        out = as_matrix([[1, 2], [3, 4]])
        assert out.shape == (2, 2)
        assert out.dtype == np.float64

    def test_rejects_1d(self):
        with pytest.raises(ValidationError, match="2-dimensional"):
            as_matrix([1.0, 2.0])

    def test_rejects_3d(self):
        with pytest.raises(ValidationError, match="2-dimensional"):
            as_matrix(np.zeros((2, 2, 2)))

    def test_rejects_empty(self):
        with pytest.raises(ValidationError, match="non-empty"):
            as_matrix(np.zeros((0, 3)))

    def test_rejects_nan_by_default(self):
        with pytest.raises(ValidationError, match="non-finite"):
            as_matrix([[1.0, np.nan]])

    def test_allow_nan_passes_nan(self):
        out = as_matrix([[1.0, np.nan]], allow_nan=True)
        assert np.isnan(out[0, 1])

    def test_allow_nan_still_rejects_inf(self):
        with pytest.raises(ValidationError, match="infinite"):
            as_matrix([[1.0, np.inf]], allow_nan=True)

    def test_rejects_non_numeric(self):
        with pytest.raises(ValidationError, match="not convertible"):
            as_matrix([["a", "b"]])

    def test_copy_flag_returns_independent_array(self):
        src = np.ones((2, 2))
        out = as_matrix(src, copy=True)
        out[0, 0] = 5.0
        assert src[0, 0] == 1.0

    def test_no_copy_may_share_memory(self):
        src = np.ones((2, 2))
        out = as_matrix(src)
        assert out is src or np.shares_memory(out, src)


class TestAsVector:
    def test_accepts_list(self):
        out = as_vector([1, 2, 3])
        assert out.shape == (3,)

    def test_rejects_matrix(self):
        with pytest.raises(ValidationError, match="1-dimensional"):
            as_vector([[1, 2]])

    def test_rejects_empty(self):
        with pytest.raises(ValidationError, match="non-empty"):
            as_vector([])

    def test_rejects_nan(self):
        with pytest.raises(ValidationError):
            as_vector([1.0, np.nan])


class TestCheckFinite:
    def test_counts_bad_entries(self):
        with pytest.raises(ValidationError, match="2 non-finite"):
            check_finite(np.array([1.0, np.nan, np.inf]))

    def test_passes_finite(self):
        check_finite(np.array([1.0, 2.0]))


class TestCheckNonnegative:
    def test_rejects_negative(self):
        with pytest.raises(ValidationError, match="non-negative"):
            check_nonnegative(np.array([[1.0, -0.5]]))

    def test_accepts_zero(self):
        check_nonnegative(np.array([[0.0, 1.0]]))

    def test_ignores_nan_cells(self):
        check_nonnegative(np.array([[np.nan, 1.0]]))


class TestCheckMask:
    def test_accepts_bool(self):
        out = check_mask(np.array([[True, False]]), (1, 2))
        assert out.dtype == np.bool_

    def test_accepts_01_ints(self):
        out = check_mask(np.array([[1, 0]]), (1, 2))
        assert out[0, 0] and not out[0, 1]

    def test_rejects_other_values(self):
        with pytest.raises(ValidationError, match="0/1"):
            check_mask(np.array([[2, 0]]), (1, 2))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValidationError, match="does not match"):
            check_mask(np.array([[True]]), (2, 2))


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert check_in_range(0.0, name="x", low=0.0, high=1.0) == 0.0
        assert check_in_range(1.0, name="x", low=0.0, high=1.0) == 1.0

    def test_exclusive_low(self):
        with pytest.raises(ValidationError, match="> 0"):
            check_in_range(0.0, name="x", low=0.0, low_inclusive=False)

    def test_exclusive_high(self):
        with pytest.raises(ValidationError, match="< 1"):
            check_in_range(1.0, name="x", high=1.0, high_inclusive=False)

    def test_rejects_nan(self):
        with pytest.raises(ValidationError, match="finite"):
            check_in_range(float("nan"), name="x")

    def test_rejects_non_number(self):
        with pytest.raises(ValidationError, match="number"):
            check_in_range("abc", name="x")


class TestCheckPositiveInt:
    def test_accepts_numpy_int(self):
        assert check_positive_int(np.int64(3), name="k") == 3

    def test_rejects_bool(self):
        with pytest.raises(ValidationError, match="integer"):
            check_positive_int(True, name="k")

    def test_rejects_float(self):
        with pytest.raises(ValidationError, match="integer"):
            check_positive_int(3.0, name="k")

    def test_rejects_below_minimum(self):
        with pytest.raises(ValidationError, match=">= 1"):
            check_positive_int(0, name="k")


class TestCheckRank:
    def test_allows_rank_at_limit(self):
        assert check_rank(3, 3, 5) == 3

    def test_rejects_rank_above_limit(self):
        with pytest.raises(ValidationError, match="exceeds"):
            check_rank(6, 10, 5)


class TestCheckSpatialColumns:
    def test_accepts_valid(self):
        assert check_spatial_columns(2, 7) == 2

    def test_requires_remaining_column(self):
        with pytest.raises(ValidationError, match="at least one"):
            check_spatial_columns(7, 7)


class TestResolveRng:
    def test_none_gives_generator(self):
        assert isinstance(resolve_rng(None), np.random.Generator)

    def test_int_is_deterministic(self):
        a = resolve_rng(5).random()
        b = resolve_rng(5).random()
        assert a == b

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert resolve_rng(gen) is gen

    def test_rejects_strings(self):
        with pytest.raises(ValidationError, match="random_state"):
            resolve_rng("seed")
