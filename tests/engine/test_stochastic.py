"""Unit + regression tests for the stochastic solver path.

Covers the :class:`BatchScheduler` contract, the degenerate inputs the
engine must now survive (oversized batches, fully-unobserved rows
inside a batch, a zero iteration budget), the model-level ``method`` /
``update_rule`` wiring, and the stochastic telemetry fields of
:class:`FitReport`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SMF, SMFL, MaskedNMF
from repro.engine import (
    DEFAULT_BATCH_SIZE,
    BatchScheduler,
    FitReport,
    IterativeEngine,
    KernelContext,
    StochasticWorkspace,
)
from repro.engine.kernels import get_kernel
from repro.exceptions import ValidationError

# ----------------------------------------------------------- scheduler


class TestBatchScheduler:
    def test_batches_partition_the_rows(self):
        scheduler = BatchScheduler(23, batch_size=5, seed=3)
        batches = list(scheduler.batches(epoch=0))
        assert scheduler.n_batches == 5 == len(batches)
        assert [len(b) for b in batches] == [5, 5, 5, 5, 3]
        stacked = np.concatenate(batches)
        assert np.array_equal(np.sort(stacked), np.arange(23))

    def test_shuffle_is_a_pure_function_of_seed_and_epoch(self):
        one = BatchScheduler(40, batch_size=8, seed=11)
        two = BatchScheduler(40, batch_size=8, seed=11)
        for epoch in (0, 1, 5):
            for a, b in zip(one.batches(epoch), two.batches(epoch)):
                assert np.array_equal(a, b)
        # Different epochs reshuffle; different seeds diverge.
        first = np.concatenate(list(one.batches(0)))
        second = np.concatenate(list(one.batches(1)))
        other = np.concatenate(list(BatchScheduler(40, batch_size=8, seed=12).batches(0)))
        assert not np.array_equal(first, second)
        assert not np.array_equal(first, other)

    def test_shuffle_off_is_sequential(self):
        scheduler = BatchScheduler(10, batch_size=4, shuffle=False)
        batches = list(scheduler.batches(epoch=7))
        assert np.array_equal(batches[0], [0, 1, 2, 3])
        assert np.array_equal(batches[2], [8, 9])

    def test_oversized_batch_clamped_to_n(self):
        scheduler = BatchScheduler(6, batch_size=1000)
        assert scheduler.batch_size == 6
        assert scheduler.n_batches == 1
        (batch,) = scheduler.batches(0)
        assert len(batch) == 6

    def test_default_batch_size(self):
        assert BatchScheduler(1000).batch_size == DEFAULT_BATCH_SIZE
        assert BatchScheduler(10).batch_size == 10

    def test_step_size_decay(self):
        scheduler = BatchScheduler(10, learning_rate=0.1, decay=0.5)
        assert scheduler.step_size(0) == pytest.approx(0.1)
        assert scheduler.step_size(2) == pytest.approx(0.05)
        flat = BatchScheduler(10, learning_rate=0.1)
        assert flat.step_size(99) == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ValidationError):
            BatchScheduler(0)
        with pytest.raises(ValidationError):
            BatchScheduler(10, batch_size=0)
        with pytest.raises(ValidationError):
            BatchScheduler(10, learning_rate=0.0)
        with pytest.raises(ValidationError):
            BatchScheduler(10, decay=-0.1)


# -------------------------------------------------- model-level wiring


class TestMethodWiring:
    def test_stochastic_rule_implies_stochastic_method(self):
        model = MaskedNMF(rank=2, update_rule="sgd")
        assert model.fit_method == "stochastic"

    def test_stochastic_method_defaults_to_sgd(self):
        model = MaskedNMF(rank=2, method="stochastic")
        assert model.update_rule == "sgd"

    def test_batch_defaults_to_multiplicative(self):
        model = MaskedNMF(rank=2)
        assert model.fit_method == "batch"
        assert model.update_rule == "multiplicative"

    def test_stochastic_method_rejects_batch_rule(self):
        with pytest.raises(ValidationError, match="stochastic update_rule"):
            MaskedNMF(rank=2, method="stochastic", update_rule="multiplicative")

    def test_unknown_method_rejected(self):
        with pytest.raises(ValidationError, match="unknown method"):
            MaskedNMF(rank=2, method="minibatch")

    def test_kernel_without_schedule_rejected(self):
        x = np.ones((4, 3))
        observed = np.ones((4, 3), dtype=bool)
        with pytest.raises(ValidationError, match="BatchScheduler"):
            get_kernel("sgd").step(
                x, observed, np.ones((4, 2)), np.ones((2, 3)), KernelContext()
            )


# ------------------------------------------------------ degenerate inputs


def _report_is_valid(model, expected_epochs):
    report = model.fit_report_
    assert isinstance(report, FitReport)
    assert report.n_iter == expected_epochs
    assert np.isfinite(model.u_).all() and np.isfinite(model.v_).all()
    estimate = model.impute()
    assert np.isfinite(estimate).all()
    return report


class TestDegenerateInputs:
    def test_batch_size_larger_than_n(self, tiny_trial):
        _, x_missing, mask = tiny_trial
        model = MaskedNMF(
            rank=3, method="stochastic", batch_size=10_000,
            learning_rate=1e-3, max_iter=4, tol=0.0, random_state=0,
        ).fit(x_missing, mask)
        report = _report_is_valid(model, expected_epochs=4)
        # One clamped batch per epoch: every epoch touches all N rows.
        n_rows = np.asarray(x_missing).shape[0]
        assert report.rows_touched == (n_rows,) * 4

    @pytest.mark.parametrize("rule", ["sgd", "svrg"])
    def test_fully_unobserved_rows_in_a_batch(self, rule, rng):
        x = rng.random((20, 6)) + 0.05
        x[3] = np.nan
        x[17] = np.nan  # two whole rows unobserved
        model = MaskedNMF(
            rank=2, update_rule=rule, batch_size=4, shuffle=True,
            learning_rate=1e-3, max_iter=5, tol=0.0, random_state=1,
        ).fit(x)
        report = _report_is_valid(model, expected_epochs=5)
        assert all(np.isfinite(s) for s in report.sampled_objectives)

    def test_zero_budget_returns_initial_factors(self, tiny_trial):
        _, x_missing, mask = tiny_trial
        for model in (
            MaskedNMF(rank=3, max_iter=0, random_state=0),
            SMF(rank=3, n_spatial=2, max_iter=0, random_state=0),
            SMFL(rank=3, n_spatial=2, max_iter=0, random_state=0),
            MaskedNMF(
                rank=3, method="stochastic", max_iter=0,
                learning_rate=1e-3, random_state=0,
            ),
        ):
            model.fit(x_missing, mask)
            report = _report_is_valid(model, expected_epochs=0)
            assert report.objective_history == ()
            assert not report.converged
            assert model.n_iter_ == 0

    def test_zero_budget_engine_level(self):
        class Never:
            name = "never"

            def step(self, state):  # pragma: no cover - must not run
                raise AssertionError("step must not be called with max_iter=0")

            def objective(self, state):
                return 1.0

            def factors(self, state):
                return {}

            def converged(self, state, monitor):
                return False

        outcome = IterativeEngine(max_iter=0, tol=0.0).run(Never(), "initial")
        assert outcome.n_iter == 0
        assert outcome.state == "initial"
        assert outcome.objective_history == ()

    def test_negative_budget_still_rejected(self):
        with pytest.raises(ValidationError):
            MaskedNMF(rank=2, max_iter=-1)


# --------------------------------------------------- stochastic telemetry


class TestStochasticTelemetry:
    @pytest.mark.parametrize("rule", ["sgd", "svrg"])
    def test_per_epoch_fields(self, rule, tiny_trial):
        _, x_missing, mask = tiny_trial
        epochs = 6
        model = SMFL(
            rank=3, n_spatial=2, update_rule=rule, batch_size=16,
            learning_rate=1e-3, max_iter=epochs, tol=0.0, random_state=0,
        ).fit(x_missing, mask)
        report = model.fit_report_
        n_rows = np.asarray(x_missing).shape[0]
        assert len(report.sampled_objectives) == epochs
        assert all(s >= 0 for s in report.sampled_objectives)
        # Sampling without replacement: each epoch touches every row once.
        assert report.rows_touched == (n_rows,) * epochs
        assert report.total_row_updates == epochs * n_rows

    def test_total_row_updates_full_batch_fallback(self, tiny_trial):
        _, x_missing, mask = tiny_trial
        model = MaskedNMF(rank=3, max_iter=7, tol=0.0, random_state=0).fit(
            x_missing, mask
        )
        report = model.fit_report_
        assert report.rows_touched == ()
        assert report.total_row_updates == 7 * np.asarray(x_missing).shape[0]

    def test_workspace_buffer_is_reused(self):
        workspace = StochasticWorkspace()
        a = workspace.residual_buffer(8, 5)
        b = workspace.residual_buffer(8, 5)
        assert a.base is b.base or a is b
        smaller = workspace.residual_buffer(3, 5)
        assert smaller.shape == (3, 5)
        # Changing the column count must reallocate.
        other = workspace.residual_buffer(8, 7)
        assert other.shape == (8, 7)
