"""Property-based equivalence of the workspace kernel paths.

The contract of :mod:`repro.engine.workspace`, enforced across random
shapes, masks, seeds and both model families:

- the dense ``workspace`` path is **bit-identical** to the
  ``reference`` rules — every objective evaluation and the final
  factors, not just "close" (this is what lets the golden fixtures
  stay frozen while the default path changes);
- the ``sparse`` path is numerically equivalent (tight ``allclose``),
  keeps SMFL's frozen landmark block bit-intact, and preserves the
  multiplicative rule's objective monotonicity.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import SMFL, MaskedNMF

pytest.importorskip("scipy.sparse")

EQUIVALENCE_SETTINGS = settings(
    max_examples=8,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)

problem = st.fixed_dictionaries(
    {
        "n": st.integers(min_value=12, max_value=30),
        "m": st.integers(min_value=6, max_value=10),
        "missing": st.floats(min_value=0.1, max_value=0.8),
        "seed": st.integers(min_value=0, max_value=2**31 - 1),
    }
)

RANK = 3


def make_spatial_problem(n, m, missing, seed):
    """Non-negative data whose first two columns are (observed) coords."""
    rng = np.random.default_rng(seed)
    x = rng.random((n, m)) * 4.0
    x[:, :2] = rng.random((n, 2)) * 10.0
    observed = rng.random((n, m)) >= missing
    observed[:, :2] = True
    observed[0, 2] = True  # at least one observed attribute cell
    return np.where(observed, x, np.nan)


def fit_pair(model_factory, x_missing, path_a, path_b):
    a = model_factory(path_a).fit(x_missing)
    b = model_factory(path_b).fit(x_missing)
    return a, b


class TestWorkspaceBitIdentity:
    @given(problem=problem, rule=st.sampled_from(["multiplicative", "gradient"]))
    @EQUIVALENCE_SETTINGS
    def test_nmf_trace_bit_identical(self, problem, rule):
        x_missing = make_spatial_problem(**problem)

        def factory(path):
            return MaskedNMF(
                rank=RANK, update_rule=rule, learning_rate=1e-3,
                max_iter=15, tol=0.0, random_state=0, kernel_path=path,
            )

        ref, ws = fit_pair(factory, x_missing, "reference", "workspace")
        assert list(ref.objective_history_) == list(ws.objective_history_)
        assert np.array_equal(ref.u_, ws.u_)
        assert np.array_equal(ref.v_, ws.v_)

    @given(problem=problem, rule=st.sampled_from(["multiplicative", "gradient"]))
    @EQUIVALENCE_SETTINGS
    def test_smfl_trace_bit_identical(self, problem, rule):
        x_missing = make_spatial_problem(**problem)

        def factory(path):
            return SMFL(
                rank=RANK, n_spatial=2, lam=0.05, p_neighbors=3,
                update_rule=rule, learning_rate=1e-3,
                max_iter=15, tol=0.0, random_state=0, kernel_path=path,
            )

        ref, ws = fit_pair(factory, x_missing, "reference", "workspace")
        assert list(ref.objective_history_) == list(ws.objective_history_)
        assert np.array_equal(ref.u_, ws.u_)
        assert np.array_equal(ref.v_, ws.v_)


class TestSparseEquivalence:
    @given(problem=problem)
    @EQUIVALENCE_SETTINGS
    def test_nmf_factors_numerically_equal(self, problem):
        x_missing = make_spatial_problem(**problem)

        def factory(path):
            return MaskedNMF(
                rank=RANK, max_iter=15, tol=0.0, random_state=0,
                kernel_path=path,
            )

        ref, sp = fit_pair(factory, x_missing, "reference", "sparse")
        assert np.allclose(ref.u_, sp.u_, rtol=0.0, atol=1e-10)
        assert np.allclose(ref.v_, sp.v_, rtol=0.0, atol=1e-10)

    @given(problem=problem)
    @EQUIVALENCE_SETTINGS
    def test_smfl_frozen_block_and_monotonicity(self, problem):
        x_missing = make_spatial_problem(**problem)
        model = SMFL(
            rank=RANK, n_spatial=2, lam=0.05, p_neighbors=3,
            max_iter=15, tol=0.0, random_state=0, kernel_path="sparse",
        ).fit(x_missing)
        # The landmark block of V must be bit-identical to its K-means
        # initialisation (the telemetry checks it every iteration).
        assert model.fit_report_.landmark_block_intact is True
        history = np.asarray(model.objective_history_)
        assert (np.diff(history) <= 1e-8 * (1.0 + history[:-1])).all()

    @given(problem=problem)
    @EQUIVALENCE_SETTINGS
    def test_smfl_factors_numerically_equal(self, problem):
        x_missing = make_spatial_problem(**problem)

        def factory(path):
            return SMFL(
                rank=RANK, n_spatial=2, lam=0.05, p_neighbors=3,
                max_iter=15, tol=0.0, random_state=0, kernel_path=path,
            )

        ref, sp = fit_pair(factory, x_missing, "reference", "sparse")
        assert np.allclose(ref.u_, sp.u_, rtol=0.0, atol=1e-10)
        assert np.allclose(ref.v_, sp.v_, rtol=0.0, atol=1e-10)
