"""Property-based invariants of the update kernels (multiplicative + stochastic).

Hypothesis drives randomized shapes, masks and seeds through the whole
kernel family and asserts the guarantees the paper (and the stochastic
extension) must keep regardless of the draw:

- **Non-negativity**: every kernel maps non-negative factors to
  non-negative factors (multiplicative by construction, gradient/SGD
  through explicit projection);
- **Landmark frozenness**: SMFL's landmark block of ``V`` is never
  mutated, by any kernel, on any draw — checked both through the
  telemetry verdict and directly against the K-means centers;
- **Objective discipline**: the multiplicative rule keeps the full
  objective non-increasing (Propositions 5/7); the stochastic rules
  with a decaying step keep it within a bounded factor of the initial
  objective (they may fluctuate, but must not blow up).
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import SMF, SMFL, MaskedNMF
from repro.core.objective import masked_frobenius_sq
from repro.engine import STOCHASTIC_KERNELS, BatchScheduler, StochasticWorkspace
from repro.engine.kernels import KernelContext, get_kernel

PROPERTY_SETTINGS = settings(
    max_examples=12,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)

#: Random problem draw: shape, missing rate, data/mask/shuffle seed.
problem = st.fixed_dictionaries(
    {
        "n": st.integers(min_value=10, max_value=28),
        "m": st.integers(min_value=4, max_value=8),
        "missing": st.floats(min_value=0.0, max_value=0.5),
        "seed": st.integers(min_value=0, max_value=2**31 - 1),
    }
)

RANK = 3


def make_problem(n, m, missing, seed):
    """A non-negative low-rank-ish matrix with a random mask."""
    rng = np.random.default_rng(seed)
    u = rng.random((n, RANK))
    v = rng.random((RANK, m))
    x = u @ v + 0.05 * rng.random((n, m))
    observed = rng.random((n, m)) >= missing
    # Keep at least one observed cell so the objective is defined.
    observed[0, 0] = True
    x_missing = np.where(observed, x, np.nan)
    return x_missing, observed


def stochastic_kwargs(seed):
    return dict(
        method="stochastic",
        batch_size=7,
        learning_rate=5e-3,
        lr_decay=0.5,
        max_iter=6,
        tol=0.0,
        random_state=seed,
    )


class TestNonnegativity:
    @PROPERTY_SETTINGS
    @given(problem=problem, rule=st.sampled_from(["multiplicative", "sgd", "svrg"]))
    def test_nmf_factors_stay_nonnegative(self, problem, rule):
        x_missing, _ = make_problem(**problem)
        kwargs = (
            stochastic_kwargs(problem["seed"])
            if rule in STOCHASTIC_KERNELS
            else dict(max_iter=6, tol=0.0, random_state=problem["seed"])
        )
        kwargs["update_rule"] = rule
        model = MaskedNMF(rank=RANK, **kwargs).fit(x_missing)
        assert np.isfinite(model.u_).all() and np.isfinite(model.v_).all()
        assert (model.u_ >= 0).all()
        assert (model.v_ >= 0).all()

    @PROPERTY_SETTINGS
    @given(problem=problem, rule=st.sampled_from(["multiplicative", "sgd", "svrg"]))
    def test_smf_factors_stay_nonnegative(self, problem, rule):
        x_missing, _ = make_problem(**problem)
        kwargs = (
            stochastic_kwargs(problem["seed"])
            if rule in STOCHASTIC_KERNELS
            else dict(max_iter=6, tol=0.0, random_state=problem["seed"])
        )
        kwargs["update_rule"] = rule
        model = SMF(rank=RANK, n_spatial=2, **kwargs).fit(x_missing)
        assert np.isfinite(model.u_).all() and np.isfinite(model.v_).all()
        assert (model.u_ >= 0).all()
        assert (model.v_ >= 0).all()


class TestLandmarkFrozenness:
    @PROPERTY_SETTINGS
    @given(
        problem=problem,
        rule=st.sampled_from(["multiplicative", "gradient", "sgd", "svrg"]),
    )
    def test_landmark_block_never_mutated(self, problem, rule):
        x_missing, _ = make_problem(**problem)
        kwargs = (
            stochastic_kwargs(problem["seed"])
            if rule in STOCHASTIC_KERNELS
            else dict(max_iter=6, tol=0.0, random_state=problem["seed"])
        )
        kwargs["update_rule"] = rule
        model = SMFL(rank=RANK, n_spatial=2, **kwargs).fit(x_missing)
        # Telemetry checked the block after *every* epoch/iteration.
        assert model.fit_report_.landmark_block_intact is True
        # And the final block is bit-identical to the K-means centers.
        frozen = model._frozen_v_mask(model.v_.shape)
        assert np.array_equal(model.v_[frozen], model.landmarks_.values.ravel())


class TestObjectiveDiscipline:
    @PROPERTY_SETTINGS
    @given(problem=problem, family=st.sampled_from(["nmf", "smf", "smfl"]))
    def test_multiplicative_objective_never_increases(self, problem, family):
        x_missing, _ = make_problem(**problem)
        kwargs = dict(rank=RANK, max_iter=8, tol=0.0, random_state=problem["seed"])
        if family == "nmf":
            model = MaskedNMF(**kwargs)
        elif family == "smf":
            model = SMF(n_spatial=2, **kwargs)
        else:
            model = SMFL(n_spatial=2, **kwargs)
        model.fit(x_missing)
        report = model.fit_report_
        assert report.n_increases == 0
        assert report.is_monotone()

    @PROPERTY_SETTINGS
    @given(problem=problem, rule=st.sampled_from(["sgd", "svrg"]))
    def test_stochastic_objective_increase_is_bounded(self, problem, rule):
        x_missing, observed = make_problem(**problem)
        model = MaskedNMF(
            rank=RANK, update_rule=rule, **{
                k: v for k, v in stochastic_kwargs(problem["seed"]).items()
                if k != "method"
            }
        )
        # Objective at the exact initial factors (max_iter=0 fit).
        probe = MaskedNMF(
            rank=RANK, max_iter=0, random_state=problem["seed"]
        ).fit(x_missing)
        x_observed = np.where(observed, np.nan_to_num(x_missing), 0.0)
        initial = masked_frobenius_sq(x_observed, probe.u_, probe.v_, observed)

        model.fit(x_missing)
        history = np.asarray(model.fit_report_.objective_history)
        assert np.isfinite(history).all()
        # Decaying small steps may fluctuate but must stay bounded.
        assert history.max() <= 1.5 * initial + 1e-6


class TestKernelLevelInvariants:
    """Direct kernel calls: cover the general (non-prefix) frozen mask."""

    @PROPERTY_SETTINGS
    @given(problem=problem, rule=st.sampled_from(["sgd", "svrg"]))
    def test_scattered_frozen_mask_respected(self, problem, rule):
        x_missing, observed = make_problem(**problem)
        rng = np.random.default_rng(problem["seed"])
        n, m = observed.shape
        x_observed = np.where(observed, np.nan_to_num(x_missing), 0.0)
        u = rng.random((n, RANK)) + 0.1
        v = rng.random((RANK, m)) + 0.1
        frozen = rng.random((RANK, m)) < 0.3  # scattered, not a column prefix
        ctx = KernelContext(
            learning_rate=5e-3,
            frozen_v=frozen,
            scheduler=BatchScheduler(n, batch_size=5, seed=problem["seed"]),
            workspace=StochasticWorkspace(),
        )
        v_before = v.copy()
        u1, v1 = get_kernel(rule).step(x_observed, observed, u, v, ctx)
        assert (u1 >= 0).all() and (v1 >= 0).all()
        assert np.array_equal(v1[frozen], v_before[frozen])
        # The caller's V is never mutated in place.
        assert np.array_equal(v, v_before)

    @PROPERTY_SETTINGS
    @given(problem=problem)
    def test_multiplicative_kernel_preserves_inputs(self, problem):
        x_missing, observed = make_problem(**problem)
        rng = np.random.default_rng(problem["seed"])
        n, m = observed.shape
        x_observed = np.where(observed, np.nan_to_num(x_missing), 0.0)
        u = rng.random((n, RANK)) + 0.1
        v = rng.random((RANK, m)) + 0.1
        u_before, v_before = u.copy(), v.copy()
        u1, v1 = get_kernel("multiplicative").step(
            x_observed, observed, u, v, KernelContext()
        )
        assert np.array_equal(u, u_before) and np.array_equal(v, v_before)
        assert (u1 >= 0).all() and (v1 >= 0).all()
