"""Unit tests for the iteration engine, kernels, and telemetry layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FactorizationResult, MaskedNMF
from repro.core.updates import (
    gradient_update_u,
    gradient_update_v,
    multiplicative_update_u,
    multiplicative_update_v,
)
from repro.engine import (
    Callback,
    FitReport,
    IterativeEngine,
    KernelContext,
    Solver,
    Telemetry,
    UpdateKernel,
    available_kernels,
    get_kernel,
    register_kernel,
)
from repro.engine.kernels import _REGISTRY
from repro.exceptions import ConvergenceWarning, ValidationError


class CountingSolver(Solver):
    """Objective 1/n: decreases forever, converges only by tolerance."""

    name = "counting"

    def step(self, state):
        return state + 1

    def objective(self, state):
        return 1.0 / state

    def factors(self, state):
        return {"estimate": np.array([float(state)])}


class StopAtSolver(CountingSolver):
    def __init__(self, stop_at):
        self.stop_at = stop_at

    def converged(self, state, monitor):
        return state >= self.stop_at


class TestIterativeEngine:
    def test_runs_to_budget(self):
        outcome = IterativeEngine(max_iter=7, tol=0.0).run(CountingSolver(), 0)
        assert outcome.n_iter == 7
        assert outcome.state == 7
        assert not outcome.converged
        assert len(outcome.objective_history) == 7

    def test_monitor_tolerance_stops(self):
        # Relative decrease of 1/n drops below 0.2 once n > ~6.
        outcome = IterativeEngine(max_iter=100, tol=0.2).run(CountingSolver(), 0)
        assert outcome.converged
        assert outcome.n_iter < 100

    def test_custom_converged_overrides_monitor(self):
        outcome = IterativeEngine(max_iter=100, tol=0.5).run(StopAtSolver(3), 0)
        assert outcome.converged
        assert outcome.n_iter == 3

    def test_eval_every_skips_objectives(self):
        outcome = IterativeEngine(max_iter=10, tol=0.0, eval_every=3).run(
            CountingSolver(), 0
        )
        # Evaluations at 3, 6, 9 and at the final iteration 10.
        assert len(outcome.objective_history) == 4

    def test_callback_order_and_records(self):
        events = []

        class Recorder(Callback):
            def on_fit_start(self, solver, state):
                events.append("start")

            def on_iteration(self, solver, record):
                events.append(record.iteration)

            def on_fit_end(self, solver, state, monitor):
                events.append("end")

        IterativeEngine(max_iter=3, tol=0.0, callbacks=(Recorder(),)).run(
            CountingSolver(), 0
        )
        assert events == ["start", 1, 2, 3, "end"]

    def test_budget_warning(self):
        with pytest.warns(ConvergenceWarning):
            IterativeEngine(max_iter=2, tol=0.0, warn_on_budget=True).run(
                CountingSolver(), 0
            )

    def test_increases_counted_not_converged(self):
        class ZigZag(Solver):
            def step(self, state):
                return state + 1

            def objective(self, state):
                return float(state % 2)  # 1, 0, 1, 0, ...

        # History 1,0,1,0,1,0: the 0->1 transitions at steps 3 and 5.
        outcome = IterativeEngine(max_iter=6, tol=0.0).run(ZigZag(), 0)
        assert not outcome.converged
        assert outcome.n_increases == 2

    def test_validation(self):
        with pytest.raises(ValidationError):
            IterativeEngine(max_iter=-1)
        with pytest.raises(ValidationError):
            IterativeEngine(tol=-1.0)
        with pytest.raises(ValidationError):
            IterativeEngine(eval_every=0)


class TestTelemetry:
    def test_captures_walltimes_and_objectives(self):
        telemetry = Telemetry()
        IterativeEngine(max_iter=5, tol=0.0, callbacks=(telemetry,)).run(
            CountingSolver(), 0
        )
        report = telemetry.report()
        assert report.n_iter == 5
        assert len(report.wall_times) == 5
        assert all(t >= 0 for t in report.wall_times)
        assert report.method == "counting"
        assert report.total_seconds >= report.loop_seconds > 0

    def test_factor_deltas(self):
        telemetry = Telemetry()
        IterativeEngine(max_iter=4, tol=0.0, callbacks=(telemetry,)).run(
            CountingSolver(), 0
        )
        deltas = telemetry.report().factor_deltas["estimate"]
        assert len(deltas) == 4
        assert all(d == 1.0 for d in deltas)

    def test_frozen_block_violation_detected(self):
        class Mutating(CountingSolver):
            def factors(self, state):
                # "v" drifts every step: the frozen check must fail.
                return {"v": np.full((2, 2), float(state))}

        mask = np.zeros((2, 2), dtype=bool)
        mask[0, 0] = True
        telemetry = Telemetry(frozen_mask=mask, frozen_values=np.array([0.0]))
        IterativeEngine(max_iter=2, tol=0.0, callbacks=(telemetry,)).run(Mutating(), 0)
        assert telemetry.report().landmark_block_intact is False

    def test_frozen_requires_both_arguments(self):
        with pytest.raises(ValueError):
            Telemetry(frozen_mask=np.zeros((1, 1), dtype=bool))


class TestFitReport:
    def test_factorization_result_is_alias(self):
        assert FactorizationResult is FitReport

    def test_empty_report_final_objective_nan(self):
        assert np.isnan(FitReport().final_objective)
        assert np.isnan(FitReport().seconds_per_iteration)

    def test_is_monotone(self):
        assert FitReport(objective_history=(3.0, 2.0, 2.0)).is_monotone()
        assert not FitReport(objective_history=(3.0, 2.0, 2.5)).is_monotone()

    def test_model_result_returns_report(self, tiny_trial):
        _, x_missing, mask = tiny_trial
        model = MaskedNMF(rank=3, random_state=0, max_iter=25).fit(x_missing, mask)
        report = model.result()
        assert isinstance(report, FitReport)
        assert report.n_iter == model.n_iter_
        assert report.method == "nmf"
        assert len(report.wall_times) == report.n_iter


class TestKernelRegistry:
    def test_builtin_kernels_registered(self):
        assert "multiplicative" in available_kernels()
        assert "gradient" in available_kernels()

    def test_unknown_kernel(self):
        with pytest.raises(ValidationError, match="unknown update kernel"):
            get_kernel("newton")

    def test_unknown_update_rule_on_model(self):
        with pytest.raises(ValidationError, match="update_rule"):
            MaskedNMF(rank=2, update_rule="newton")

    def test_multiplicative_kernel_matches_direct_updates(self, rng):
        x = rng.random((12, 5))
        observed = rng.random((12, 5)) > 0.2
        x_observed = np.where(observed, x, 0.0)
        u0 = rng.random((12, 3)) + 0.1
        v0 = rng.random((3, 5)) + 0.1
        u_k, v_k = get_kernel("multiplicative").step(
            x_observed, observed, u0, v0, KernelContext()
        )
        u_ref = multiplicative_update_u(x_observed, observed, u0, v0)
        v_ref = multiplicative_update_v(x_observed, observed, u_ref, v0)
        assert np.array_equal(u_k, u_ref)
        assert np.array_equal(v_k, v_ref)

    def test_gradient_kernel_matches_direct_updates(self, rng):
        x = rng.random((12, 5))
        observed = rng.random((12, 5)) > 0.2
        x_observed = np.where(observed, x, 0.0)
        u0 = rng.random((12, 3)) + 0.1
        v0 = rng.random((3, 5)) + 0.1
        ctx = KernelContext(learning_rate=1e-2)
        u_k, v_k = get_kernel("gradient").step(x_observed, observed, u0, v0, ctx)
        u_ref = gradient_update_u(x_observed, observed, u0, v0, learning_rate=1e-2)
        v_ref = gradient_update_v(x_observed, observed, u_ref, v0, learning_rate=1e-2)
        assert np.array_equal(u_k, u_ref)
        assert np.array_equal(v_k, v_ref)

    def test_custom_kernel_pluggable_by_name(self, tiny_trial):
        _, x_missing, mask = tiny_trial

        @register_kernel("test-identity")
        class IdentityKernel(UpdateKernel):
            def step(self, x_observed, observed, u, v, ctx):
                return u, v

        try:
            model = MaskedNMF(
                rank=3, update_rule="test-identity", random_state=0, max_iter=5
            )
            model.fit(x_missing, mask)
            # The identity kernel never moves: converges on first eval pair.
            deltas = model.fit_report_.factor_deltas["u"]
            assert all(d == 0.0 for d in deltas)
        finally:
            _REGISTRY.pop("test-identity", None)
