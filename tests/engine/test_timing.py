"""Tests for the telemetry-driven timing/benchmark helpers.

The full-size benchmark configurations live behind ``-m slow`` (they
exist to refresh ``results/BENCH_*.json``, not to gate commits); the
fast tests here run the same code paths on tiny settings and pin the
recorded schema, including the acceptance flags of the stochastic
benchmark.
"""

from __future__ import annotations

import json

import pytest

from repro.core import MaskedNMF
from repro.engine.timing import (
    engine_benchmark,
    kernel_benchmark,
    record_kernel_baseline,
    record_runner_baseline,
    record_stochastic_baseline,
    runner_benchmark,
    stochastic_benchmark,
    telemetry_seconds,
    timed_fit_impute,
)

TINY_STOCHASTIC = dict(
    dataset="lake", n_rows=80, rank=4, epochs=10, batch_size=32,
    learning_rate=0.02, lr_decay=0.05, seed=0,
)


class TestTelemetryHelpers:
    def test_engine_driven_method_uses_its_own_clock(self, tiny_trial):
        _, x_missing, mask = tiny_trial
        model = MaskedNMF(rank=3, max_iter=10, random_state=0)
        estimate, seconds, report = timed_fit_impute(model, x_missing, mask)
        assert estimate.shape == x_missing.shape
        assert report is not None
        assert seconds == report.total_seconds
        assert telemetry_seconds(model) == report.total_seconds

    def test_one_shot_method_falls_back_to_stopwatch(self, tiny_trial):
        from repro.baselines.meanimpute import MeanImputer

        _, x_missing, mask = tiny_trial
        _, seconds, report = timed_fit_impute(MeanImputer(), x_missing, mask)
        assert report is None
        assert seconds >= 0
        assert telemetry_seconds(MeanImputer()) is None


class TestStochasticBenchmark:
    def test_schema_and_acceptance_flags(self):
        out = stochastic_benchmark(**TINY_STOCHASTIC)
        for side in ("full_batch", "stochastic"):
            entry = out[side]
            assert entry["rms"] > 0
            assert entry["total_row_updates"] > 0
            assert entry["row_updates_per_unit_decrease"] > 0
        assert out["stochastic"]["landmark_block_intact"] is True
        assert out["rms_ratio"] > 0
        assert set(out["acceptance"]) == {
            "rms_within_5pct",
            "ge_2x_fewer_row_updates_per_unit_decrease",
            "landmark_block_intact_every_epoch",
        }
        # Per-epoch sampling without replacement on the tiny config.
        assert out["stochastic"]["n_iter"] == TINY_STOCHASTIC["epochs"]

    def test_record_writes_json(self, tmp_path):
        path = tmp_path / "BENCH_stochastic.json"
        recorded = record_stochastic_baseline(path=str(path), **TINY_STOCHASTIC)
        on_disk = json.loads(path.read_text())
        assert on_disk["dataset"] == "lake"
        assert on_disk["acceptance"] == recorded["acceptance"]
        assert "python" in on_disk and "machine" in on_disk


class TestRunnerBenchmark:
    TINY_RUNNER = dict(
        methods=("mean", "knn"), datasets=("lake",), n_runs=2, jobs=2,
    )

    def test_schema_and_acceptance_flags(self):
        out = runner_benchmark(**self.TINY_RUNNER)
        assert out["n_cells"] == 4
        assert out["serial"]["cache_hits"] == 0
        assert out["cold"]["cache_misses"] == out["n_cells"]
        assert out["warm"]["cache_hits"] == out["n_cells"]
        assert out["warm"]["cache_hit_ratio"] == 1.0
        # The runner's core guarantee must hold even on tiny configs.
        assert out["acceptance"]["parallel_and_warm_bit_identical_to_serial"]
        assert out["acceptance"]["warm_cache_hit_ratio_1"]
        assert set(out["acceptance"]) == {
            "parallel_and_warm_bit_identical_to_serial",
            "warm_cache_hit_ratio_1",
            "warm_under_10pct_of_cold",
        }

    def test_record_writes_json(self, tmp_path):
        path = tmp_path / "BENCH_runner.json"
        recorded = record_runner_baseline(path=str(path), **self.TINY_RUNNER)
        on_disk = json.loads(path.read_text())
        assert on_disk["experiment"] == "table4"
        assert on_disk["acceptance"] == recorded["acceptance"]
        assert "python" in on_disk and "machine" in on_disk


TINY_KERNEL = dict(
    n_rows=60, n_cols=20, rank=3, missing_rates=(0.3, 0.8),
    max_iter=5, repeats=1, warmup_iter=1, smoke=True,
)


class TestKernelBenchmark:
    def test_schema_and_bit_identity_flag(self):
        out = kernel_benchmark(**TINY_KERNEL)
        assert set(out["rates"]) == {"0.3", "0.8"}
        for entry in out["rates"].values():
            assert entry["reference"]["iteration_seconds"] > 0
            assert entry["workspace"]["bit_identical"] is True
            assert entry["sparse"]["max_factor_deviation"] <= 1e-8
            assert entry["workspace"]["speedup"] > 0
            assert entry["sparse"]["speedup"] > 0
        # Bit-identity and numerical equivalence are deterministic
        # contracts — they must hold even on tiny, timing-noisy shapes.
        assert out["acceptance"]["workspace_bit_identical"] is True
        assert out["acceptance"]["sparse_factor_deviation_le_1e-8"] is True
        assert "smf_vs_smfl" in out
        assert set(out["smf_vs_smfl"]["rows"]) == {"150"}

    def test_record_writes_json(self, tmp_path):
        path = tmp_path / "BENCH_kernels.json"
        recorded = record_kernel_baseline(path=str(path), **TINY_KERNEL)
        on_disk = json.loads(path.read_text())
        assert on_disk["smoke"] is True
        assert on_disk["acceptance"] == recorded["acceptance"]
        assert "python" in on_disk and "machine" in on_disk


@pytest.mark.slow
class TestFullSizeBenchmarks:
    """Near-paper-size configurations; excluded from the coverage gate."""

    def test_engine_benchmark_rows(self):
        out = engine_benchmark(row_counts=(150, 300), max_iter=40)
        assert set(out["rows"]) == {"150", "300"}
        for entry in out["rows"].values():
            assert entry["smfl_per_iter_speedup"] > 0
            assert entry["smf"]["n_iter"] >= 1
