"""Property-based batched-vs-looped equivalence (repro.core.batched_fit).

Hypothesis drives random problems through :func:`fit_models_batched`
and a plain ``model.fit`` loop and asserts the bit-identity contract on
every draw, across the grid the runner's coalescing actually exercises:
solver family x update rule x kernel path x batch size (including the
``B == 1`` delegation and ineligible-path fallbacks), with the
adversarial corners pinned — ragged convergence dropout,
``max_iter=0``, all-missing rows, and SMFL's frozen landmark prefix.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import SMF, SMFL, MaskedNMF
from repro.core.batched_fit import fit_models_batched

pytest.importorskip("scipy.sparse")

BATCH_SETTINGS = settings(
    max_examples=6,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)

RANK = 3

MODEL_FAMILIES = {
    "nmf": MaskedNMF,
    "smf": SMF,
    "smfl": SMFL,
}

problem = st.fixed_dictionaries(
    {
        "family": st.sampled_from(sorted(MODEL_FAMILIES)),
        "update_rule": st.sampled_from(["multiplicative", "gradient"]),
        "kernel_path": st.sampled_from(["auto", "workspace", "batched"]),
        "b": st.sampled_from([1, 2, 7]),
        "missing": st.floats(min_value=0.1, max_value=0.6),
        "seed": st.integers(min_value=0, max_value=2**31 - 1),
        "all_missing_row": st.booleans(),
        "tol": st.sampled_from([0.0, 2e-3]),
    }
)


def make_spatial_problem(n, m, missing, seed, all_missing_row=False):
    rng = np.random.default_rng(seed)
    x = rng.random((n, m)) * 4.0
    x[:, :2] = rng.random((n, 2)) * 10.0
    observed = rng.random((n, m)) >= missing
    observed[:, :2] = True
    observed[0, 2] = True
    if all_missing_row:
        # One row with every attribute cell missing (coords stay
        # observed - the injection protocol never corrupts them).
        observed[1, 2:] = False
    return np.where(observed, x, np.nan)


def build(family, update_rule, kernel_path, seed, tol, max_iter=25):
    kwargs = dict(
        rank=RANK,
        max_iter=max_iter,
        tol=tol,
        random_state=seed,
        update_rule=update_rule,
        kernel_path=kernel_path,
    )
    if update_rule == "gradient":
        kwargs["learning_rate"] = 1e-4
    return MODEL_FAMILIES[family](**kwargs)


def assert_pair_identical(mb, ml):
    assert np.array_equal(mb.u_, ml.u_)
    assert np.array_equal(mb.v_, ml.v_)
    assert mb.n_iter_ == ml.n_iter_
    assert mb.converged_ == ml.converged_
    assert mb.objective_history_ == ml.objective_history_
    assert mb.fit_report_.n_increases == ml.fit_report_.n_increases
    assert (
        mb.fit_report_.landmark_block_intact
        == ml.fit_report_.landmark_block_intact
    )


class TestBatchedLoopedEquivalence:
    @given(problem)
    @BATCH_SETTINGS
    def test_batched_matches_looped(self, draw):
        jobs, loops = [], []
        for i in range(draw["b"]):
            seed = (draw["seed"] + i) % 2**31
            x = make_spatial_problem(
                22, 8, draw["missing"], seed,
                all_missing_row=draw["all_missing_row"],
            )
            for target in (jobs, loops):
                target.append(
                    (
                        build(
                            draw["family"], draw["update_rule"],
                            draw["kernel_path"], seed, draw["tol"],
                        ),
                        x,
                        None,
                    )
                )
        fit_models_batched(jobs)
        for model, x, _ in loops:
            model.fit(x)
        for (mb, _, _), (ml, _, _) in zip(jobs, loops):
            assert_pair_identical(mb, ml)

    @given(
        family=st.sampled_from(sorted(MODEL_FAMILIES)),
        b=st.sampled_from([1, 2, 7]),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @BATCH_SETTINGS
    def test_max_iter_zero_keeps_inits(self, family, b, seed):
        jobs, loops = [], []
        for i in range(b):
            s = (seed + i) % 2**31
            x = make_spatial_problem(20, 8, 0.3, s)
            for target in (jobs, loops):
                target.append(
                    (build(family, "multiplicative", "auto", s, 0.0, max_iter=0), x, None)
                )
        fit_models_batched(jobs)
        for model, x, _ in loops:
            model.fit(x)
        for (mb, _, _), (ml, _, _) in zip(jobs, loops):
            assert_pair_identical(mb, ml)
            assert mb.n_iter_ == 0

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @BATCH_SETTINGS
    def test_landmark_prefix_bit_frozen_in_batch(self, seed):
        jobs = []
        for i in range(4):
            s = (seed + i) % 2**31
            x = make_spatial_problem(22, 8, 0.3, s)
            jobs.append((build("smfl", "multiplicative", "auto", s, 0.0), x, None))
        fit_models_batched(jobs)
        for model, _, _ in jobs:
            assert model.fit_report_.landmark_block_intact is True

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @BATCH_SETTINGS
    def test_ineligible_kernel_path_falls_back_looped(self, seed):
        # The sparse path has no batched twin: fit_models_batched must
        # quietly run such members as plain single fits.
        jobs, loops = [], []
        for i in range(3):
            s = (seed + i) % 2**31
            x = make_spatial_problem(22, 8, 0.3, s)
            for target in (jobs, loops):
                target.append(
                    (build("nmf", "multiplicative", "sparse", s, 0.0), x, None)
                )
        fit_models_batched(jobs)
        for model, x, _ in loops:
            model.fit(x)
        for (mb, _, _), (ml, _, _) in zip(jobs, loops):
            assert_pair_identical(mb, ml)
