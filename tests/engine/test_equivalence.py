"""Equivalence tests: the engine refactor preserves numerics.

Three layers of guarantees:

1. the vectorized helpers (``column_mean_fill``,
   ``clip_columns_to_observed``) match their pre-refactor loop
   implementations, reproduced here verbatim as references;
2. a model fit through :class:`~repro.engine.IterativeEngine` matches a
   hand-written reference loop over the same hooks (the pre-refactor
   ``fit`` body) bit-for-bit;
3. an engine-driven baseline (SVT matrix completion) matches its
   pre-refactor explicit loop bit-for-bit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.base import column_mean_fill
from repro.baselines.mc import MatrixCompletionImputer, svd_shrink
from repro.core import SMF, SMFL, MaskedNMF
from repro.core.convergence import ConvergenceMonitor
from repro.core.factorization import clip_columns_to_observed
from repro.validation import resolve_rng

# --------------------------------------------------------- loop references


def reference_column_mean_fill(x, observed):
    """Pre-refactor per-column loop implementation."""
    x = np.asarray(x, dtype=np.float64)
    filled = x.copy()
    any_observed = observed.any()
    global_mean = x[observed].mean() if any_observed else 0.0
    for j in range(x.shape[1]):
        col_observed = observed[:, j]
        fill = x[col_observed, j].mean() if col_observed.any() else global_mean
        filled[~col_observed, j] = fill
    return filled


def reference_clip_columns(estimate, x, observed):
    """Pre-refactor per-column loop implementation."""
    clipped = estimate.copy()
    for j in range(x.shape[1]):
        col_observed = observed[:, j]
        if not col_observed.any():
            continue
        values = x[col_observed, j]
        clipped[:, j] = np.clip(clipped[:, j], values.min(), values.max())
    return clipped


def reference_model_fit(model, x, mask):
    """The pre-refactor ``MatrixFactorizationBase.fit`` loop body."""
    x, observation = model._coerce_input(x, mask)
    x_observed = observation.project(x)
    observed = observation.observed
    rng = resolve_rng(model.random_state)
    model._prepare_fit(x, x_observed, observation)
    u, v = model._initial_factors(x_observed, observed, rng)
    monitor = ConvergenceMonitor(max_iter=model.max_iter, tol=model.tol)
    steps = 0
    while steps < model.max_iter and not monitor.converged:
        u, v = model._step(x_observed, observed, u, v)
        steps += 1
        if steps % model.eval_every == 0 or steps == model.max_iter:
            monitor.record(model._objective(x_observed, u, v, observed))
    return u, v, steps


def reference_svt(x_observed, observed, *, tau, delta, tol, max_iter):
    """The pre-refactor explicit SVT loop."""
    norm_obs = float(np.linalg.norm(x_observed)) or 1.0
    dual = delta * x_observed
    estimate = np.zeros_like(x_observed)
    for _ in range(max_iter):
        estimate, _ = svd_shrink(dual, tau)
        residual = np.where(observed, x_observed - estimate, 0.0)
        dual = dual + delta * residual
        if float(np.linalg.norm(residual)) / norm_obs < tol:
            break
    return estimate


# ----------------------------------------------------------------- tests


class TestVectorizedHelpers:
    @pytest.mark.parametrize("missing_rate", [0.0, 0.1, 0.5, 0.95])
    def test_column_mean_fill_matches_reference(self, rng, missing_rate):
        x = rng.random((40, 9))
        observed = rng.random((40, 9)) >= missing_rate
        observed[:, 4] = False  # force an all-missing column
        result = column_mean_fill(x, observed)
        expected = reference_column_mean_fill(x, observed)
        np.testing.assert_allclose(result, expected, rtol=0, atol=1e-12)
        # Observed cells pass through bit-exactly.
        assert np.array_equal(result[observed], x[observed])

    def test_column_mean_fill_nothing_observed(self):
        x = np.ones((3, 3))
        observed = np.zeros((3, 3), dtype=bool)
        assert np.array_equal(column_mean_fill(x, observed), np.zeros((3, 3)))

    @pytest.mark.parametrize("missing_rate", [0.1, 0.6])
    def test_clip_columns_matches_reference(self, rng, missing_rate):
        x = rng.random((35, 8))
        observed = rng.random((35, 8)) >= missing_rate
        observed[:, 2] = False  # all-missing column must pass through
        estimate = rng.normal(scale=3.0, size=(35, 8))
        result = clip_columns_to_observed(estimate, x, observed)
        expected = reference_clip_columns(estimate, x, observed)
        assert np.array_equal(result, expected)
        assert np.array_equal(result[:, 2], estimate[:, 2])


class TestEngineMatchesReferenceLoop:
    """Same seeds => bit-identical factors, pre- and post-refactor."""

    @pytest.mark.parametrize(
        "make",
        [
            lambda: MaskedNMF(rank=4, max_iter=40, random_state=7),
            lambda: MaskedNMF(
                rank=4, max_iter=40, random_state=7, update_rule="gradient",
                learning_rate=1e-2,
            ),
            lambda: MaskedNMF(rank=4, max_iter=40, random_state=7, eval_every=5),
            lambda: SMF(rank=4, n_spatial=2, max_iter=40, random_state=7),
            lambda: SMFL(rank=4, n_spatial=2, max_iter=40, random_state=7),
        ],
        ids=["nmf", "nmf-gradient", "nmf-eval5", "smf", "smfl"],
    )
    def test_factors_bit_identical(self, make, tiny_trial):
        _, x_missing, mask = tiny_trial
        u_ref, v_ref, steps_ref = reference_model_fit(make(), x_missing, mask)
        model = make().fit(x_missing, mask)
        assert model.n_iter_ == steps_ref
        assert np.array_equal(model.u_, u_ref)
        assert np.array_equal(model.v_, v_ref)

    def test_early_stop_matches(self, tiny_trial):
        _, x_missing, mask = tiny_trial
        def make():
            return MaskedNMF(rank=4, max_iter=400, tol=1e-3, random_state=7)

        u_ref, v_ref, steps_ref = reference_model_fit(make(), x_missing, mask)
        model = make().fit(x_missing, mask)
        assert steps_ref < 400  # the tolerance actually fired
        assert model.n_iter_ == steps_ref
        assert model.converged_
        assert np.array_equal(model.u_, u_ref)
        assert np.array_equal(model.v_, v_ref)


class TestBaselineMatchesReferenceLoop:
    def test_svt_bit_identical(self, tiny_trial):
        _, x_missing, mask = tiny_trial
        imputer = MatrixCompletionImputer(max_iter=60)
        result = imputer.fit_impute(x_missing, mask)

        x_coerced, observation = imputer._coerce(np.asarray(x_missing), mask)
        x_observed = observation.project(x_coerced)
        observed = observation.observed
        n, m = x_observed.shape
        n_obs = max(observation.n_observed, 1)
        scale = float(np.abs(x_observed[observed]).mean())
        tau = 5.0 * np.sqrt(n * m) * scale / 5.0
        delta = min(1.2 * n * m / n_obs, 1.9)
        estimate = reference_svt(
            x_observed, observed, tau=tau, delta=delta,
            tol=imputer.tol, max_iter=60,
        )
        expected = observation.merge(x_coerced, estimate)
        assert np.array_equal(result, expected)
        # The engine also produced telemetry for the same run.
        report = imputer.fit_report_
        assert report is not None
        assert report.method == "mc"
        assert len(report.wall_times) == report.n_iter > 0
