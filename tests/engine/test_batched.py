"""Unit tests for the batched multi-fit kernel (repro.engine.batched).

The contract under test is bit-identity: a fit run inside a stack must
produce the same factor bits, objective history, ``n_iter``,
``converged`` and ``n_increases`` as its looped twin — including when
other members of the stack converge first and drop out.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SMF, SMFL, MaskedNMF
from repro.core.batched_fit import fit_models_batched
from repro.engine import BatchedFit, MultiFitReport, multi_fit
from repro.engine.batched import BatchedWorkspace
from repro.exceptions import ValidationError

RANK = 3


def make_spatial_problem(n, m, missing, seed):
    rng = np.random.default_rng(seed)
    x = rng.random((n, m)) * 4.0
    x[:, :2] = rng.random((n, 2)) * 10.0
    observed = rng.random((n, m)) >= missing
    observed[:, :2] = True
    observed[0, 2] = True
    return np.where(observed, x, np.nan)


def fit_pair(factory, seeds, **fit_kwargs):
    """(batched models, looped models) fitted on identical problems."""
    batched, looped = [], []
    for seed in seeds:
        x = make_spatial_problem(24, 8, 0.3, seed)
        batched.append((factory(seed), x, None))
        looped.append((factory(seed), x, None))
    fit_models_batched([(m, x, mask) for m, x, mask in batched], **fit_kwargs)
    for model, x, mask in looped:
        model.fit(x)
    return batched, looped


def assert_models_identical(batched, looped):
    for (mb, _, _), (ml, _, _) in zip(batched, looped):
        assert np.array_equal(mb.u_, ml.u_)
        assert np.array_equal(mb.v_, ml.v_)
        assert mb.n_iter_ == ml.n_iter_
        assert mb.converged_ == ml.converged_
        assert mb.objective_history_ == ml.objective_history_
        rb, rl = mb.fit_report_, ml.fit_report_
        assert rb.n_increases == rl.n_increases
        assert rb.landmark_block_intact == rl.landmark_block_intact


class TestBatchedVsLooped:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda seed: MaskedNMF(
                rank=RANK, max_iter=40, tol=0.0, random_state=seed
            ),
            lambda seed: SMF(rank=RANK, max_iter=40, tol=0.0, random_state=seed),
            lambda seed: SMFL(
                rank=RANK, max_iter=40, tol=0.0, random_state=seed
            ),
        ],
        ids=["nmf", "smf", "smfl"],
    )
    def test_bit_identical(self, factory):
        batched, looped = fit_pair(factory, range(4))
        assert_models_identical(batched, looped)

    def test_gradient_rule(self):
        def factory(seed):
            return SMFL(
                rank=RANK,
                max_iter=30,
                tol=0.0,
                random_state=seed,
                update_rule="gradient",
                learning_rate=1e-4,
            )

        batched, looped = fit_pair(factory, range(3))
        assert_models_identical(batched, looped)

    def test_ragged_convergence_dropout(self):
        # A loose tolerance makes members converge at different
        # iterations, exercising the np.take compaction path; every
        # survivor must still match its looped twin bit-for-bit.
        def factory(seed):
            return SMFL(rank=RANK, max_iter=150, tol=2e-3, random_state=seed)

        batched, looped = fit_pair(factory, range(5))
        assert_models_identical(batched, looped)
        iters = sorted({m.n_iter_ for m, _, _ in batched})
        assert len(iters) > 1, "tolerance never produced ragged convergence"

    def test_mixed_methods_share_one_group(self):
        # nmf and smf cells with the same shape/rank stack together;
        # per-fit lam keeps the graph term out of the nmf members.
        jobs, looped = [], []
        for seed in range(2):
            x = make_spatial_problem(24, 8, 0.3, seed)
            for cls in (MaskedNMF, SMF):
                jobs.append(
                    (cls(rank=RANK, max_iter=30, tol=0.0, random_state=seed), x, None)
                )
                looped.append(
                    (cls(rank=RANK, max_iter=30, tol=0.0, random_state=seed), x, None)
                )
        fit_models_batched(jobs)
        for model, x, _ in looped:
            model.fit(x)
        assert_models_identical(jobs, looped)

    def test_landmark_prefix_stays_bit_frozen(self):
        batched, _ = fit_pair(
            lambda seed: SMFL(rank=RANK, max_iter=40, tol=0.0, random_state=seed),
            range(3),
        )
        for model, _, _ in batched:
            assert model.fit_report_.landmark_block_intact is True


class TestMultiFitAPI:
    def _fits(self, b, n=16, m=6, k=2):
        fits = []
        for seed in range(b):
            rng = np.random.default_rng(seed)
            x = rng.random((n, m))
            observed = rng.random((n, m)) > 0.2
            fits.append(
                BatchedFit(
                    x_observed=np.where(observed, x, 0.0),
                    observed=observed,
                    u0=rng.random((n, k)) + 0.1,
                    v0=rng.random((k, m)) + 0.1,
                )
            )
        return fits

    def test_empty_fits_rejected(self):
        with pytest.raises(ValidationError):
            multi_fit([])

    def test_unknown_update_rule_rejected(self):
        with pytest.raises(ValidationError):
            multi_fit(self._fits(2), update_rule="sgd")

    def test_mismatched_shapes_rejected(self):
        fits = self._fits(1) + self._fits(1, n=20)
        with pytest.raises(ValidationError):
            multi_fit(fits, max_iter=1)

    def test_graph_term_requires_operators(self):
        fit = self._fits(1)[0]
        with pytest.raises(ValidationError):
            BatchedFit(
                x_observed=fit.x_observed,
                observed=fit.observed,
                u0=fit.u0,
                v0=fit.v0,
                lam=0.5,
            )

    def test_report_split_preserves_order_and_counts(self):
        report = multi_fit(self._fits(3), max_iter=5, tol=0.0)
        assert isinstance(report, MultiFitReport)
        assert report.n_fits == 3
        assert len(report.split()) == 3
        assert report.batch_iterations == 5
        assert sum(report.batch_sizes) == 15  # 3 members x 5 iterations
        for member in report.split():
            assert member.n_iter == 5
            assert len(member.objective_history) == 5

    def test_max_iter_zero_returns_inits(self):
        fits = self._fits(2)
        report = multi_fit(fits, max_iter=0)
        for fit, member in zip(fits, report.split()):
            assert np.array_equal(member.u, fit.u0)
            assert np.array_equal(member.v, fit.v0)
            assert member.n_iter == 0
            assert not member.converged

    def test_b1_delegates_without_3d_dispatch(self):
        fits = self._fits(1)
        report = multi_fit(fits, max_iter=4, tol=0.0)
        assert report.n_fits == 1
        assert report.batch_sizes == (1, 1, 1, 1)

    def test_gram_path_within_tolerance(self):
        # The opt-in Gram split changes summation order: equivalent
        # within the documented 1e-12, not bit-identical.
        def make(seed):
            rng = np.random.default_rng(seed)
            n, m, k, prefix = 18, 7, 3, 2
            x = rng.random((n, m)) + 0.1
            observed = rng.random((n, m)) > 0.3
            observed[:, :prefix] = True
            return BatchedFit(
                x_observed=np.where(observed, x, 0.0),
                observed=observed,
                u0=rng.random((n, k)) + 0.1,
                v0=rng.random((k, m)) + 0.1,
            )

        fits_fused = [make(s) for s in range(3)]
        fits_gram = [make(s) for s in range(3)]
        fused = multi_fit(fits_fused, max_iter=20, tol=0.0, frozen_prefix=2)
        gram = multi_fit(
            fits_gram, max_iter=20, tol=0.0, frozen_prefix=2, use_gram=True
        )
        assert gram.use_gram
        for a, b in zip(fused.split(), gram.split()):
            np.testing.assert_allclose(a.u, b.u, rtol=1e-9, atol=1e-12)
            np.testing.assert_allclose(a.v, b.v, rtol=1e-9, atol=1e-12)
            assert b.landmark_block_intact is True


class TestSharedOperatorFastPath:
    """The stacked graph-term path must match the per-member loop."""

    def _graph_fits(self, b, shared, lam=0.1):
        import scipy.sparse as sp

        rng = np.random.default_rng(0)
        n, m, k = 18, 7, 3
        sim_shared = sp.random(n, n, density=0.2, random_state=1, format="csr")
        sim_shared = sim_shared + sim_shared.T
        deg_shared = np.asarray(sim_shared.sum(axis=1)).ravel()
        lap_shared = np.diag(deg_shared) - sim_shared.toarray()
        pen_shared = sp.csr_matrix(lap_shared)
        fits = []
        for seed in range(b):
            frng = np.random.default_rng(100 + seed)
            x = frng.random((n, m))
            observed = frng.random((n, m)) > 0.2
            if shared:
                sim, deg, lap, pen = sim_shared, deg_shared, lap_shared, pen_shared
            else:
                sim = sp.random(
                    n, n, density=0.2, random_state=10 + seed, format="csr"
                )
                sim = sim + sim.T
                deg = np.asarray(sim.sum(axis=1)).ravel()
                lap = np.diag(deg) - sim.toarray()
                pen = sp.csr_matrix(lap)
            fits.append(
                BatchedFit(
                    x_observed=np.where(observed, x, 0.0),
                    observed=observed,
                    u0=frng.random((n, k)) + 0.1,
                    v0=frng.random((k, m)) + 0.1,
                    lam=lam,
                    similarity=sim,
                    degree=deg,
                    laplacian=lap,
                    penalty_op=pen,
                )
            )
        return fits

    def test_plan_detects_shared_operators(self):
        ws = BatchedWorkspace(self._graph_fits(3, shared=True))
        plan = ws._graph_plan
        assert plan.similarity is not None
        assert plan.laplacian is not None
        assert plan.penalty_op is not None
        assert plan.lam3 is not None

    def test_plan_rejects_heterogeneous_operators(self):
        ws = BatchedWorkspace(self._graph_fits(3, shared=False))
        plan = ws._graph_plan
        assert plan.similarity is None
        assert plan.laplacian is None
        assert plan.penalty_op is None

    @pytest.mark.parametrize("update_rule", ["multiplicative", "gradient"])
    def test_shared_matches_per_member_loop(self, update_rule):
        # Same values, different sharing: one batch holds one operator
        # object, the other holds per-member copies (defeating the
        # ``is`` check) — the results must agree bit-for-bit.
        import scipy.sparse as sp

        shared = self._graph_fits(3, shared=True)
        copied = []
        for f in shared:
            copied.append(
                BatchedFit(
                    x_observed=f.x_observed.copy(),
                    observed=f.observed.copy(),
                    u0=f.u0.copy(),
                    v0=f.v0.copy(),
                    lam=f.lam,
                    similarity=sp.csr_matrix(f.similarity.copy()),
                    degree=np.asarray(f.degree).copy(),
                    laplacian=np.asarray(f.laplacian).copy(),
                    penalty_op=sp.csr_matrix(np.asarray(f.penalty_op.toarray())),
                )
            )
        kwargs = dict(max_iter=25, tol=0.0, update_rule=update_rule)
        if update_rule == "gradient":
            kwargs["learning_rate"] = 1e-4
        a = multi_fit(shared, **kwargs)
        b = multi_fit(copied, **kwargs)
        for ra, rb in zip(a.split(), b.split()):
            assert np.array_equal(ra.u, rb.u)
            assert np.array_equal(ra.v, rb.v)
            assert ra.objective_history == rb.objective_history
