"""Tier-1 invariants of the factorization family, via engine telemetry.

Two theoretical guarantees from the paper, checked on every fit through
the engine's callbacks rather than by re-running ad-hoc loops:

- **Monotonicity** (Propositions 5 and 7): the multiplicative updates
  of Formulas 13-14 never increase the masked objective, for NMF, SMF
  and SMFL alike.
- **Landmark frozenness** (Formula 9 / Algorithm 1): SMFL's landmark
  block in V is bit-identical to the injected K-means centers at
  *every* iteration, not just at the end.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SMF, SMFL, MaskedNMF
from repro.engine import Callback

RANK = 5
MAX_ITER = 60


def make_model(name, **overrides):
    kwargs = dict(rank=RANK, max_iter=MAX_ITER, tol=0.0, random_state=0)
    kwargs.update(overrides)
    if name == "nmf":
        return MaskedNMF(**kwargs)
    if name == "smf":
        return SMF(n_spatial=2, **kwargs)
    return SMFL(n_spatial=2, **kwargs)


class TestMultiplicativeMonotonicity:
    """Props 5 & 7: objective history is non-increasing for the family."""

    @pytest.mark.parametrize("name", ["nmf", "smf", "smfl"])
    def test_objective_never_increases(self, name, tiny_trial):
        _, x_missing, mask = tiny_trial
        model = make_model(name).fit(x_missing, mask)
        report = model.fit_report_
        assert len(report.objective_history) == MAX_ITER
        assert report.n_increases == 0
        assert report.is_monotone()
        history = np.asarray(report.objective_history)
        assert np.all(np.diff(history) <= 1e-10 * np.abs(history[:-1]))

    @pytest.mark.parametrize("name", ["nmf", "smf", "smfl"])
    def test_telemetry_counts_every_iteration(self, name, tiny_trial):
        _, x_missing, mask = tiny_trial
        model = make_model(name).fit(x_missing, mask)
        report = model.fit_report_
        assert report.n_iter == MAX_ITER
        assert len(report.wall_times) == MAX_ITER
        assert len(report.factor_deltas["u"]) == MAX_ITER
        assert len(report.factor_deltas["v"]) == MAX_ITER


class _LandmarkRecorder(Callback):
    """Capture the landmark block of V after every engine iteration."""

    def __init__(self, frozen_mask: np.ndarray) -> None:
        self.frozen_mask = frozen_mask
        self.blocks: list[np.ndarray] = []

    def on_iteration(self, solver, record) -> None:
        v = solver.factors(record.state)["v"]
        self.blocks.append(v[self.frozen_mask].copy())


class TestLandmarkFrozenness:
    """Formula 9: the landmark block never moves, at any iteration."""

    def test_block_identical_at_every_iteration(self, tiny_trial):
        _, x_missing, mask = tiny_trial
        model = make_model("smfl")
        # The frozen mask only exists after _prepare_fit; fit once to
        # learn the landmarks, then refit with the recorder attached
        # (same seed => same landmarks, same trajectory).
        model.fit(x_missing, mask)
        frozen = model._frozen_v_mask(model.v_.shape)
        recorder = _LandmarkRecorder(frozen)
        model.fit(x_missing, mask, callbacks=(recorder,))

        expected = model.landmarks_.values.ravel()
        assert len(recorder.blocks) == MAX_ITER
        for block in recorder.blocks:
            assert np.array_equal(block, expected)

    def test_report_confirms_landmark_block(self, tiny_trial):
        _, x_missing, mask = tiny_trial
        model = make_model("smfl").fit(x_missing, mask)
        assert model.fit_report_.landmark_block_intact is True

    def test_non_landmark_models_have_no_block_claim(self, tiny_trial):
        _, x_missing, mask = tiny_trial
        for name in ("nmf", "smf"):
            model = make_model(name).fit(x_missing, mask)
            assert model.fit_report_.landmark_block_intact is None

    def test_gradient_rule_also_freezes_block(self, tiny_trial):
        _, x_missing, mask = tiny_trial
        model = make_model(
            "smfl", update_rule="gradient", learning_rate=1e-3, max_iter=30
        ).fit(x_missing, mask)
        assert model.fit_report_.landmark_block_intact is True
