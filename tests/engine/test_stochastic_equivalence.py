"""Reduction tests: the stochastic kernels contain the full-batch gradient rule.

With ``batch_size >= N``, shuffling off and no step decay, one epoch of
``sgd`` is exactly one full projected-gradient iteration, and SVRG's
variance-reduction correction vanishes (the single batch *is* the
anchor), so both stochastic kernels must reproduce the deterministic
``gradient`` kernel — same seeds, same factors.  The operation order in
the kernels was matched deliberately, so the agreement is bit-exact,
not merely to tolerance.

A second layer keeps shuffling ON with one full-size batch: the
permutation then only reorders the rows inside the single batch, which
reorders floating-point summations but nothing else — the factors must
agree to tight tolerance.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SMF, SMFL, MaskedNMF

LR = 5e-3
EPOCHS = 25
SEED = 7
RANK = 4

MODELS = {
    "nmf": lambda **kw: MaskedNMF(rank=RANK, random_state=SEED, **kw),
    "smf": lambda **kw: SMF(rank=RANK, n_spatial=2, random_state=SEED, **kw),
    "smfl": lambda **kw: SMFL(rank=RANK, n_spatial=2, random_state=SEED, **kw),
}


def fit_reference(family, x_missing, mask):
    """Full-batch projected gradient descent, the deterministic target."""
    model = MODELS[family](
        update_rule="gradient", learning_rate=LR, max_iter=EPOCHS, tol=0.0
    )
    return model.fit(x_missing, mask)


def fit_stochastic(family, x_missing, mask, rule, *, shuffle=False):
    n_rows = np.asarray(x_missing).shape[0]
    model = MODELS[family](
        method="stochastic",
        update_rule=rule,
        learning_rate=LR,
        lr_decay=0.0,
        batch_size=n_rows,  # a single batch: the full-batch special case
        shuffle=shuffle,
        max_iter=EPOCHS,
        tol=0.0,
    )
    return model.fit(x_missing, mask)


@pytest.mark.parametrize("family", sorted(MODELS))
@pytest.mark.parametrize("rule", ["sgd", "svrg"])
class TestFullBatchReduction:
    def test_factors_bit_identical_to_gradient_kernel(
        self, family, rule, tiny_trial
    ):
        _, x_missing, mask = tiny_trial
        reference = fit_reference(family, x_missing, mask)
        stochastic = fit_stochastic(family, x_missing, mask, rule)
        assert np.array_equal(stochastic.u_, reference.u_)
        assert np.array_equal(stochastic.v_, reference.v_)

    def test_shuffled_single_batch_agrees_to_tolerance(
        self, family, rule, tiny_trial
    ):
        # Shuffling a single full-size batch permutes rows inside the
        # batch: U rows are updated independently (identical values,
        # permuted consistently) and the V gradient is a sum over rows,
        # so only summation order can differ.
        _, x_missing, mask = tiny_trial
        reference = fit_reference(family, x_missing, mask)
        stochastic = fit_stochastic(family, x_missing, mask, rule, shuffle=True)
        np.testing.assert_allclose(
            stochastic.u_, reference.u_, rtol=1e-9, atol=1e-12
        )
        np.testing.assert_allclose(
            stochastic.v_, reference.v_, rtol=1e-9, atol=1e-12
        )


class TestStochasticDeterminism:
    """Same ``random_state`` => identical schedule => identical factors."""

    @pytest.mark.parametrize("rule", ["sgd", "svrg"])
    def test_refit_reproduces_factors(self, rule, tiny_trial):
        _, x_missing, mask = tiny_trial
        def run():
            model = MODELS["smfl"](
                method="stochastic", update_rule=rule, learning_rate=LR,
                batch_size=16, max_iter=10, tol=0.0,
            )
            return model.fit(x_missing, mask)

        first, second = run(), run()
        assert np.array_equal(first.u_, second.u_)
        assert np.array_equal(first.v_, second.v_)
        assert (
            first.fit_report_.rows_touched == second.fit_report_.rows_touched
        )
        assert (
            first.fit_report_.sampled_objectives
            == second.fit_report_.sampled_objectives
        )

    def test_same_initial_factors_as_batch_path(self, tiny_trial):
        # The scheduler seed is drawn *after* factor initialisation, so
        # batch and stochastic fits share U0/V0 for one random_state.
        _, x_missing, mask = tiny_trial
        batch = MODELS["nmf"](max_iter=0).fit(x_missing, mask)
        stochastic = MODELS["nmf"](
            method="stochastic", max_iter=0, learning_rate=LR
        ).fit(x_missing, mask)
        assert np.array_equal(batch.u_, stochastic.u_)
        assert np.array_equal(batch.v_, stochastic.v_)
