"""Unit tests for the kernel backend registry (repro.engine.backends).

The seam's contract: named backends resolve through one registry, the
optional compiled backend degrades to the pure-numpy workspace with *no
behavior change* when numba is absent, and — when it is present — its
fused loops are bit-exact against the workspace kernels.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MaskedNMF
from repro.engine.backends import (
    Backend,
    available_backends,
    backend_available,
    get_backend,
    register_backend,
)
from repro.engine.numba_backend import NUMBA_AVAILABLE
from repro.engine.workspace import (
    KERNEL_PATHS,
    KernelWorkspace,
    build_kernel_workspace,
    resolve_kernel_path,
)
from repro.exceptions import ValidationError


def make_problem(seed=0, n=20, m=8, missing=0.3):
    rng = np.random.default_rng(seed)
    x = rng.random((n, m)) * 4.0
    observed = rng.random((n, m)) >= missing
    observed[0, 0] = True
    return np.where(observed, x, np.nan)


class TestRegistry:
    def test_builtins_registered(self):
        names = set(available_backends())
        assert {"reference", "workspace", "sparse", "batched"} <= names
        # numba is listed only when importable; either way it resolves.
        assert get_backend("numba").name == "numba"
        assert ("numba" in names) == NUMBA_AVAILABLE

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValidationError, match="workspace"):
            get_backend("cuda")

    def test_register_and_construct_custom_backend(self):
        calls = []

        def factory(x_observed, observed, *, frozen_prefix=None, v0=None):
            calls.append(x_observed.shape)
            return KernelWorkspace(x_observed, observed, mode="dense")

        register_backend(
            Backend(name="test-custom", description="test", factory=factory)
        )
        try:
            backend = get_backend("test-custom")
            assert backend_available("test-custom")
            ws = backend.make_workspace(
                np.ones((4, 3)), np.ones((4, 3), dtype=bool)
            )
            assert isinstance(ws, KernelWorkspace)
            assert calls == [(4, 3)]
        finally:
            from repro.engine import backends

            backends._REGISTRY.pop("test-custom", None)

    def test_numba_availability_matches_import(self):
        assert backend_available("numba") == NUMBA_AVAILABLE


class TestResolution:
    def test_kernel_paths_include_new_names(self):
        assert "batched" in KERNEL_PATHS
        assert "numba" in KERNEL_PATHS

    def test_batched_resolves_to_workspace(self):
        observed = np.ones((6, 4), dtype=bool)
        assert (
            resolve_kernel_path(
                "batched", update_rule="multiplicative", observed=observed
            )
            == "workspace"
        )
        # Rules without a dense workspace fall back to reference.
        assert (
            resolve_kernel_path("batched", update_rule="sgd", observed=observed)
            == "reference"
        )

    def test_numba_resolution_degrades_cleanly(self):
        observed = np.ones((6, 4), dtype=bool)
        resolved = resolve_kernel_path(
            "numba", update_rule="multiplicative", observed=observed
        )
        assert resolved == ("numba" if NUMBA_AVAILABLE else "workspace")

    def test_unknown_path_rejected(self):
        with pytest.raises(ValidationError):
            resolve_kernel_path(
                "gpu", update_rule="multiplicative",
                observed=np.ones((2, 2), dtype=bool),
            )


class TestNumbaFallback:
    """kernel_path='numba' with numba absent == the workspace path."""

    def test_fit_is_bit_identical_to_workspace(self):
        x = make_problem(seed=3)
        via_numba = MaskedNMF(
            rank=3, max_iter=30, tol=0.0, random_state=3, kernel_path="numba"
        ).fit(x)
        via_workspace = MaskedNMF(
            rank=3, max_iter=30, tol=0.0, random_state=3, kernel_path="workspace"
        ).fit(x)
        if not NUMBA_AVAILABLE:
            assert np.array_equal(via_numba.u_, via_workspace.u_)
            assert np.array_equal(via_numba.v_, via_workspace.v_)
            assert (
                via_numba.objective_history_
                == via_workspace.objective_history_
            )

    def test_build_workspace_type(self):
        x = make_problem(seed=1)
        observed = ~np.isnan(x)
        ws = build_kernel_workspace(
            np.where(observed, x, 0.0),
            observed,
            kernel_path="numba",
            update_rule="multiplicative",
        )
        if NUMBA_AVAILABLE:
            from repro.engine.numba_backend import NumbaWorkspace

            assert isinstance(ws, NumbaWorkspace)
        else:
            assert type(ws) is KernelWorkspace


@pytest.mark.skipif(not NUMBA_AVAILABLE, reason="numba not installed")
class TestNumbaBitExactness:
    """The compiled-backend gate: fused loops vs workspace kernels.

    Runs only under the ``[compiled]`` extra (the CI compiled-backend
    job); the EPSILON-guarded scale update and the clamped descent step
    are three correctly-rounded float ops either way, so the contract
    is bit-exactness, not tolerance.
    """

    @pytest.mark.parametrize("update_rule", ["multiplicative", "gradient"])
    def test_fit_bit_exact_vs_workspace(self, update_rule):
        x = make_problem(seed=7)
        kwargs = dict(rank=3, max_iter=40, tol=0.0, random_state=7,
                      update_rule=update_rule)
        if update_rule == "gradient":
            kwargs["learning_rate"] = 1e-4
        a = MaskedNMF(kernel_path="numba", **kwargs).fit(x)
        b = MaskedNMF(kernel_path="workspace", **kwargs).fit(x)
        assert np.array_equal(a.u_, b.u_)
        assert np.array_equal(a.v_, b.v_)
        assert a.objective_history_ == b.objective_history_

    def test_fused_kernels_bit_exact_elementwise(self):
        from repro.core.updates import EPSILON, guarded_divide
        from repro.engine.numba_backend import (
            _fused_descent_step,
            _fused_scale_update,
        )

        rng = np.random.default_rng(0)
        base = rng.random((50, 7))
        num = rng.random((50, 7))
        den = rng.random((50, 7))
        den[::5] = 0.0  # exercise the EPSILON guard
        expected_num = num.copy()
        guarded_divide(num, den, out=expected_num, denominator_is_scratch=True)
        expected = base * expected_num
        out = np.empty_like(base)
        _fused_scale_update(base, num.copy(), den, out)
        assert np.array_equal(out, expected)

        grad = rng.random((50, 7)) - 0.5
        lr = 1e-3
        expected = np.maximum(base - grad * lr, 0.0)
        out = np.empty_like(base)
        _fused_descent_step(base, grad, lr, out)
        assert np.array_equal(out, expected)
