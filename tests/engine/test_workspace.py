"""Unit tests for repro.engine.workspace (the allocation-free kernels).

The per-iteration *equivalence* of the workspace paths against the
reference rules lives in ``test_kernel_equivalence.py`` (hypothesis
driven) and the steady-state allocation contract in
``test_allocations.py``; this module covers the structural pieces:
path resolution, the buffer arena, the Gram cache, the sparse index
structure, and the masked objective.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.workspace import (
    KERNEL_PATHS,
    SPARSE_DENSITY_THRESHOLD,
    BufferArena,
    GramCache,
    KernelWorkspace,
    build_kernel_workspace,
    resolve_kernel_path,
)
from repro.core.objective import masked_frobenius_sq
from repro.exceptions import ValidationError

scipy_sparse = pytest.importorskip("scipy.sparse")


def _problem(rng, n=30, m=12, k=4, rate=0.3, prefix=0):
    x = rng.random((n, m)) * 3
    observed = rng.random((n, m)) > rate
    if prefix:
        observed[:, :prefix] = True
    x_observed = np.where(observed, x, 0.0)
    u = rng.random((n, k))
    v = rng.random((k, m))
    return x_observed, observed, u, v


class TestResolveKernelPath:
    def test_unknown_path_rejected(self, rng):
        _, observed, _, _ = _problem(rng)
        with pytest.raises(ValidationError, match="kernel_path"):
            resolve_kernel_path(
                "turbo", update_rule="multiplicative", observed=observed
            )

    def test_reference_passthrough(self, rng):
        _, observed, _, _ = _problem(rng)
        out = resolve_kernel_path(
            "reference", update_rule="multiplicative", observed=observed
        )
        assert out == "reference"

    def test_stochastic_rules_fall_back_to_reference(self, rng):
        _, observed, _, _ = _problem(rng)
        for rule in ("sgd", "svrg"):
            assert (
                resolve_kernel_path("auto", update_rule=rule, observed=observed)
                == "reference"
            )

    def test_sparse_requires_multiplicative(self, rng):
        _, observed, _, _ = _problem(rng)
        with pytest.raises(ValidationError, match="multiplicative"):
            resolve_kernel_path("sparse", update_rule="gradient", observed=observed)

    def test_auto_picks_sparse_below_density_threshold(self, rng):
        observed = rng.random((40, 20)) > (1 - SPARSE_DENSITY_THRESHOLD / 2)
        assert (
            resolve_kernel_path(
                "auto", update_rule="multiplicative", observed=observed
            )
            == "sparse"
        )

    def test_auto_stays_dense_at_golden_density(self, rng):
        # Missing rate 0.1 (the golden configurations) => density 0.9.
        observed = rng.random((40, 20)) > 0.1
        assert (
            resolve_kernel_path(
                "auto", update_rule="multiplicative", observed=observed
            )
            == "workspace"
        )

    def test_gradient_auto_resolves_to_workspace(self, rng):
        observed = rng.random((40, 20)) > 0.8  # sparse density, but gradient
        assert (
            resolve_kernel_path("auto", update_rule="gradient", observed=observed)
            == "workspace"
        )

    def test_all_legal_paths_resolve(self, rng):
        _, observed, _, _ = _problem(rng)
        for path in KERNEL_PATHS:
            out = resolve_kernel_path(
                path, update_rule="multiplicative", observed=observed
            )
            assert out in ("reference", "workspace", "sparse")


class TestBufferArena:
    def test_buf_reused_for_same_key(self):
        arena = BufferArena()
        a = arena.buf("x", (3, 4))
        b = arena.buf("x", (3, 4))
        assert a is b

    def test_buf_reallocates_on_shape_change(self):
        arena = BufferArena()
        a = arena.buf("x", (3, 4))
        b = arena.buf("x", (5, 4))
        assert a is not b and b.shape == (5, 4)

    def test_out_for_never_aliases_current(self):
        arena = BufferArena()
        u = np.zeros((4, 2))
        first = arena.out_for("u", u)
        assert first is not u
        # Ping-pong: asking against the previous output returns the
        # other slot, and the set of slots stabilises at two arrays.
        second = arena.out_for("u", first)
        assert second is not first
        third = arena.out_for("u", second)
        assert third is first


class TestGramCache:
    def test_matches_direct_products(self, rng):
        x_observed, observed, u, v = _problem(rng, prefix=3)
        cache = GramCache(x_observed, v, 3)
        v_land = v[:, :3]
        assert np.allclose(cache.gram_vl, v_land @ v_land.T)
        assert np.allclose(cache.xl_vlt, x_observed[:, :3] @ v_land.T)

    def test_buffers_are_read_only(self, rng):
        x_observed, _, _, v = _problem(rng, prefix=2)
        cache = GramCache(x_observed, v, 2)
        with pytest.raises(ValueError):
            cache.gram_vl[0, 0] = 1.0
        with pytest.raises(ValueError):
            cache.xl_vlt[0, 0] = 1.0


class TestSparseObserved:
    def test_index_arrays_match_mask(self, rng):
        x_observed, observed, u, v = _problem(rng, rate=0.7)
        ws = KernelWorkspace(x_observed, observed, mode="sparse")
        sp = ws.sparse
        rows, cols = np.nonzero(observed)
        assert np.array_equal(sp.rows, rows)
        assert np.array_equal(sp.cols, cols)
        assert np.array_equal(sp.vals, x_observed[rows, cols])
        assert sp.nnz == int(observed.sum())

    def test_csr_matrices_share_structure(self, rng):
        x_observed, observed, _, _ = _problem(rng, rate=0.7)
        ws = KernelWorkspace(x_observed, observed, mode="sparse")
        sp = ws.sparse
        # scipy may rewrap (and downcast) the index arrays, but the
        # sparsity pattern is one structure and — critically — the
        # recon matrix must see in-place writes to ``recon_data``.
        assert np.array_equal(sp.recon_csr.indices, sp.x_csr.indices)
        assert np.array_equal(sp.recon_csr.indptr, sp.x_csr.indptr)
        assert np.shares_memory(sp.recon_csr.data, sp.recon_data)
        assert np.shares_memory(sp.x_csr.data, sp.vals)
        sp.recon_data[:] = 7.0
        assert (sp.recon_csr.data == 7.0).all()
        assert np.allclose(sp.x_csr.toarray(), x_observed)

    def test_flat_indices_address_live_block(self, rng):
        x_observed, observed, u, v = _problem(rng, rate=0.7, prefix=2)
        ws = KernelWorkspace(
            x_observed, observed, mode="sparse", frozen_prefix=2, v0=v
        )
        sp = ws.sparse
        assert sp.offset == 2
        dense = u @ v[:, 2:]
        taken = dense.reshape(-1)[sp.flat]
        gathered = (u[sp.rows] * v[:, 2:].T[sp.cols]).sum(axis=1)
        assert np.allclose(taken, gathered)

    def test_gram_skipped_when_landmark_columns_not_fully_observed(self, rng):
        x_observed, observed, u, v = _problem(rng, rate=0.7, prefix=0)
        observed[:, :2] = rng.random((observed.shape[0], 2)) > 0.5
        ws = KernelWorkspace(
            x_observed, observed, mode="sparse", frozen_prefix=2, v0=v
        )
        assert ws.gram is None
        assert ws.sparse.offset == 0

    def test_unknown_mode_rejected(self, rng):
        x_observed, observed, _, _ = _problem(rng)
        with pytest.raises(ValidationError, match="mode"):
            KernelWorkspace(x_observed, observed, mode="quantum")


class TestMaskedObjective:
    def test_dense_bit_identical_to_reference(self, rng):
        x_observed, observed, u, v = _problem(rng)
        ws = KernelWorkspace(x_observed, observed)
        expected = masked_frobenius_sq(x_observed, u, v, observed)
        assert ws.masked_objective(x_observed, u, v) == expected

    def test_dense_objective_memo_survives_repeat_calls(self, rng):
        x_observed, observed, u, v = _problem(rng)
        ws = KernelWorkspace(x_observed, observed)
        first = ws.masked_objective(x_observed, u, v)
        # Second call hits the recon memo; must return the same value.
        assert ws.masked_objective(x_observed, u, v) == first

    def test_sparse_close_to_reference(self, rng):
        x_observed, observed, u, v = _problem(rng, rate=0.8)
        ws = KernelWorkspace(x_observed, observed, mode="sparse")
        expected = masked_frobenius_sq(x_observed, u, v, observed)
        assert ws.masked_objective(x_observed, u, v) == pytest.approx(
            expected, rel=1e-12
        )

    def test_sparse_with_landmark_slab(self, rng):
        x_observed, observed, u, v = _problem(rng, rate=0.8, prefix=2)
        ws = KernelWorkspace(
            x_observed, observed, mode="sparse", frozen_prefix=2, v0=v
        )
        assert ws.gram is not None
        expected = masked_frobenius_sq(x_observed, u, v, observed)
        assert ws.masked_objective(x_observed, u, v) == pytest.approx(
            expected, rel=1e-12
        )


class TestBuildKernelWorkspace:
    def test_reference_returns_none(self, rng):
        x_observed, observed, _, _ = _problem(rng)
        assert (
            build_kernel_workspace(
                x_observed, observed,
                kernel_path="reference", update_rule="multiplicative",
            )
            is None
        )

    def test_workspace_mode_dense(self, rng):
        x_observed, observed, _, _ = _problem(rng)
        ws = build_kernel_workspace(
            x_observed, observed,
            kernel_path="workspace", update_rule="multiplicative",
        )
        assert isinstance(ws, KernelWorkspace) and ws.mode == "dense"

    def test_sparse_mode_with_prefix(self, rng):
        x_observed, observed, u, v = _problem(rng, rate=0.8, prefix=2)
        ws = build_kernel_workspace(
            x_observed, observed,
            kernel_path="sparse", update_rule="multiplicative",
            frozen_prefix=2, v0=v,
        )
        assert ws.mode == "sparse" and ws.gram is not None
