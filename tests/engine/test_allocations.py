"""Steady-state allocation contract of the workspace kernels.

The tentpole claim of :mod:`repro.engine.workspace` is that once the
per-fit buffers exist, iterations allocate **no** new ``N x M`` (or
``N x K``) arrays — every pass is an ``out=``-form operation into the
arena.  ``tracemalloc`` (which numpy's allocator reports into) measures
the peak of warmed-up iterations directly; the reference rules allocate
several full matrices per step and serve as the control.
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro.engine.kernels import KernelContext, get_kernel
from repro.engine.workspace import KernelWorkspace

N, M, K = 300, 80, 6
FULL_MATRIX_BYTES = N * M * 8


@pytest.fixture
def problem(rng):
    x = rng.random((N, M)) * 3.0
    observed = rng.random((N, M)) > 0.4
    x_observed = np.where(observed, x, 0.0)
    u = rng.random((N, K)) + 0.1
    v = rng.random((K, M)) + 0.1
    return x_observed, observed, u, v


def measure_peak(kernel, x_observed, observed, u, v, ctx, ws, iters=5):
    """Peak allocated bytes across warmed-up step+objective iterations."""
    # Warm the arena: first iterations allocate every named buffer and
    # both ping-pong slots; afterwards the pools are steady.
    for _ in range(3):
        u, v = kernel.step(x_observed, observed, u, v, ctx)
        if ws is not None:
            ws.masked_objective(x_observed, u, v)
    tracemalloc.start()
    try:
        for _ in range(iters):
            u, v = kernel.step(x_observed, observed, u, v, ctx)
            if ws is not None:
                ws.masked_objective(x_observed, u, v)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


@pytest.mark.parametrize("rule", ["multiplicative", "gradient"])
def test_dense_workspace_steady_state_is_allocation_free(problem, rule):
    x_observed, observed, u, v = problem
    ws = KernelWorkspace(x_observed, observed)
    ctx = KernelContext(learning_rate=1e-3, kernel_workspace=ws)
    peak = measure_peak(get_kernel(rule), x_observed, observed, u, v, ctx, ws)
    # Far below one N x M matrix: only interpreter-level float/tuple
    # churn remains (the guard is 1/8 of a single full-matrix pass;
    # the reference path allocates several per iteration).
    assert peak < FULL_MATRIX_BYTES / 8


def test_sparse_workspace_steady_state_allocates_only_small_blocks(problem):
    pytest.importorskip("scipy.sparse")
    x_observed, observed, u, v = problem
    ws = KernelWorkspace(x_observed, observed, mode="sparse")
    ctx = KernelContext(kernel_workspace=ws)
    peak = measure_peak(
        get_kernel("multiplicative"), x_observed, observed, u, v, ctx, ws
    )
    # scipy's csr products allocate their (N x K)/(M x K) results —
    # O((N + M) K) per iteration, several alive at once — but never a
    # full N x M matrix, so the peak stays below a single dense pass.
    assert peak < FULL_MATRIX_BYTES


def test_reference_rules_allocate_full_matrices(problem):
    """Control: the naive rules allocate multiples of N x M per step —
    if this ever stops holding, the workspace guard above has lost its
    meaning and both thresholds need revisiting."""
    x_observed, observed, u, v = problem
    ctx = KernelContext()
    peak = measure_peak(
        get_kernel("multiplicative"), x_observed, observed, u, v, ctx, None, iters=2
    )
    assert peak > FULL_MATRIX_BYTES
