"""FitReport JSON round-trip: the telemetry travels, the factors don't.

A report crosses process and file boundaries (manifests, cache entries,
trace attributes), so ``to_json_dict`` must be ``json.dumps``-clean -
no ndarrays, no tuples - and ``from_json_dict`` must restore the exact
dataclass (tuples back, ``None``-vs-``False`` verdicts preserved)
except for the deliberately dropped factor matrices.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro.engine import FitReport


def _full_report() -> FitReport:
    return FitReport(
        u=np.arange(12.0).reshape(4, 3),
        v=np.arange(6.0).reshape(3, 2),
        objective_history=(9.5, 3.25, 1.125),
        n_iter=3,
        converged=True,
        wall_times=(0.25, 0.125, 0.0625),
        factor_deltas={"u": (1.5, 0.5, 0.25), "v": (0.75, 0.25, 0.125)},
        n_increases=0,
        landmark_block_intact=True,
        sampled_objectives=(8.0, 2.0),
        rows_touched=(64, 64),
        method="smfl",
        setup_seconds=0.5,
        loop_seconds=0.4375,
    )


def _assert_ndarray_free(value: object) -> None:
    assert not isinstance(value, np.ndarray)
    if isinstance(value, dict):
        for inner in value.values():
            _assert_ndarray_free(inner)
    elif isinstance(value, (list, tuple)):
        for inner in value:
            _assert_ndarray_free(inner)


class TestToJsonDict:
    def test_is_json_serialisable_and_ndarray_free(self):
        data = _full_report().to_json_dict()
        _assert_ndarray_free(data)
        # Round-tripping through the actual codec is the real contract.
        assert json.loads(json.dumps(data)) == data

    def test_factors_become_shapes_not_payloads(self):
        data = _full_report().to_json_dict()
        assert data["u_shape"] == [4, 3]
        assert data["v_shape"] == [3, 2]
        assert "u" not in data and "v" not in data

    def test_numpy_scalars_are_coerced(self):
        report = FitReport(
            objective_history=(np.float64(2.0),),
            wall_times=(np.float32(0.5),),
            rows_touched=(np.int64(7),),
            n_iter=int(np.int32(1)),
        )
        data = json.loads(json.dumps(report.to_json_dict()))
        assert data["objective_history"] == [2.0]
        assert data["rows_touched"] == [7]


class TestRoundTrip:
    def test_full_report_round_trips_minus_factors(self):
        original = _full_report()
        wire = json.loads(json.dumps(original.to_json_dict()))
        restored = FitReport.from_json_dict(wire)
        assert restored == dataclasses.replace(original, u=None, v=None)

    def test_tuples_come_back_as_tuples(self):
        restored = FitReport.from_json_dict(_full_report().to_json_dict())
        assert isinstance(restored.objective_history, tuple)
        assert isinstance(restored.wall_times, tuple)
        assert isinstance(restored.rows_touched, tuple)
        assert all(
            isinstance(deltas, tuple)
            for deltas in restored.factor_deltas.values()
        )

    def test_default_report_round_trips(self):
        blank = FitReport()
        assert FitReport.from_json_dict(blank.to_json_dict()) == blank

    @pytest.mark.parametrize("verdict", [None, True, False])
    def test_landmark_verdict_three_states_survive(self, verdict):
        report = FitReport(landmark_block_intact=verdict)
        wire = json.loads(json.dumps(report.to_json_dict()))
        assert FitReport.from_json_dict(wire).landmark_block_intact is verdict

    def test_derived_properties_survive(self):
        original = _full_report()
        restored = FitReport.from_json_dict(original.to_json_dict())
        assert restored.final_objective == original.final_objective
        assert restored.total_seconds == original.total_seconds
        assert restored.seconds_per_iteration == original.seconds_per_iteration
        assert restored.is_monotone() == original.is_monotone()
        # total_row_updates uses rows_touched here, not the dropped u.
        assert restored.total_row_updates == original.total_row_updates

    def test_real_engine_fit_round_trips(self, rng):
        from repro.core.smfl import SMFL

        x = np.abs(rng.normal(size=(40, 6))) + 0.1
        model = SMFL(rank=3, n_spatial=2, max_iter=5, random_state=0)
        model.fit(x)
        report = model.fit_report_
        restored = FitReport.from_json_dict(
            json.loads(json.dumps(report.to_json_dict()))
        )
        assert restored == dataclasses.replace(report, u=None, v=None)


# --------------------------------------------------------------- properties

from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

_finite = st.floats(allow_nan=False, allow_infinity=False, width=64)
_history = st.lists(_finite, max_size=6).map(tuple)

report_draw = st.builds(
    FitReport,
    objective_history=_history,
    n_iter=st.integers(min_value=0, max_value=10_000),
    converged=st.booleans(),
    wall_times=_history,
    factor_deltas=st.dictionaries(
        st.sampled_from(["u", "v"]), _history, max_size=2
    ),
    n_increases=st.integers(min_value=0, max_value=50),
    landmark_block_intact=st.sampled_from([None, True, False]),
    sampled_objectives=_history,
    rows_touched=st.lists(
        st.integers(min_value=0, max_value=10_000), max_size=6
    ).map(tuple),
    method=st.sampled_from(["", "nmf", "smf", "smfl", "nmf_sgd"]),
    setup_seconds=st.floats(min_value=0.0, max_value=1e6),
    loop_seconds=st.floats(min_value=0.0, max_value=1e6),
)


class TestRoundTripProperty:
    """Hypothesis: the JSON codec is the identity on every telemetry draw."""

    @settings(
        max_examples=60,
        deadline=None,
        derandomize=True,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(report=report_draw)
    def test_codec_is_identity_through_real_json(self, report):
        wire = json.loads(json.dumps(report.to_json_dict()))
        assert FitReport.from_json_dict(wire) == report
        # A second hop changes nothing (the codec is idempotent).
        again = FitReport.from_json_dict(
            json.loads(json.dumps(FitReport.from_json_dict(wire).to_json_dict()))
        )
        assert again == report
