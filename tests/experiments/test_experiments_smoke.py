"""Smoke tests for the table/figure regenerators on tiny settings.

These verify shapes, labels and basic sanity (finite, positive values)
without asserting the paper's orderings - the full-size orderings are
exercised by the integration suite and recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    figure_4a,
    figure_4b,
    figure_5,
    figure_6,
    figure_7,
    figure_8,
    figure_9,
    table_iv,
    table_vi,
    table_vii,
)
from repro.experiments.tables import table_v

FAST = dict(fast=True, n_runs=1)


class TestTables:
    def test_table_iv_shape(self):
        out = table_iv(methods=("mean", "nmf"), datasets=("lake",), **FAST)
        assert set(out) == {"lake"}
        assert set(out["lake"]) == {"mean", "nmf"}
        assert all(v > 0 for v in out["lake"].values())

    def test_table_v_spatial_missing(self):
        out = table_v(methods=("mean",), datasets=("lake",), **FAST)
        assert out["lake"]["mean"] > 0

    def test_table_vi_methods(self):
        out = table_vi(datasets=("lake",), **FAST)
        assert set(out["lake"]) == {"baran", "holoclean", "nmf", "smf", "smfl"}

    def test_table_vii_rows(self):
        out = table_vii(
            datasets=("lake",), missing_rates=(0.1, 0.3), **FAST
        )
        assert set(out) == {"lake/nmf", "lake/smf", "lake/smfl"}
        assert set(out["lake/nmf"]) == {"10%", "30%"}


class TestFigures:
    def test_figure_4a_series(self):
        out = figure_4a(methods=("mean", "smfl"), n_runs=1, n_routes=5, fast=True)
        assert set(out) == {"mean", "smfl"}
        assert all(np.isfinite(v) for v in out.values())

    def test_figure_4b_series(self):
        out = figure_4b(methods=("nmf", "pca"), n_runs=1, fast=True)
        assert set(out) == {"nmf", "pca"}
        assert all(0 <= v <= 1 for v in out.values())

    def test_figure_5_geometry(self):
        out = figure_5(rank=4, seed=0, fast=True)
        assert out["smfl_inside_fraction"] == 1.0
        assert out["smfl_locations"].shape == (4, 2)
        assert "smf_gd_locations" in out and "smf_multi_locations" in out

    def test_figure_6_sweep(self):
        out = figure_6(datasets=("lake",), lams=(0.01, 1.0), n_runs=1, fast=True)
        assert set(out) == {"lake/smf", "lake/smfl"}
        assert set(out["lake/smf"]) == {"0.01", "1.0"}

    def test_figure_7_sweep(self):
        out = figure_7(datasets=("lake",), ps=(1, 3), n_runs=1, fast=True)
        assert set(out["lake/smfl"]) == {"1", "3"}

    def test_figure_8_sweep(self):
        out = figure_8(datasets=("lake",), ranks=(2, 4), n_runs=1, fast=True)
        assert set(out["lake/smfl"]) == {"2.0", "4.0"}

    def test_figure_9_timings_positive(self):
        out = figure_9(
            datasets=("lake",), row_counts=(120,),
            methods=("softimpute", "smfl"), fast=True,
        )
        assert out["lake/smfl"]["120"] > 0
        assert out["lake/softimpute"]["120"] > 0


class TestCLI:
    def test_list_command(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["list"]) == 0
        captured = capsys.readouterr()
        assert "table4" in captured.out

    def test_unknown_experiment_raises(self):
        from repro.exceptions import ValidationError
        from repro.experiments.__main__ import main

        with pytest.raises(ValidationError):
            main(["tableX"])
