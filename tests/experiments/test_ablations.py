"""Unit tests for the ablation regenerators."""

from __future__ import annotations

import numpy as np

from repro.experiments.ablations import (
    ablation_clipping,
    ablation_initialisation,
    ablation_landmark_source,
)


class TestAblationLandmarkSource:
    def test_all_sources_evaluated(self):
        out = ablation_landmark_source(
            sources=("kmeans", "random"), n_runs=1, fast=True
        )
        row = out["lake/smfl"]
        assert set(row) == {"kmeans", "random"}
        assert all(np.isfinite(v) and v > 0 for v in row.values())


class TestAblationInitialisation:
    def test_all_inits_evaluated(self):
        out = ablation_initialisation(n_runs=1, fast=True)
        row = out["lake/smfl"]
        assert set(row) == {"landmark", "random", "nndsvd"}
        assert all(v > 0 for v in row.values())


class TestAblationClipping:
    def test_modes_and_rates(self):
        out = ablation_clipping(missing_rates=(0.1,), n_runs=1, fast=True)
        assert set(out) == {"lake@10%"}
        row = out["lake@10%"]
        assert set(row) == {"clip", "no-clip"}
        # Clipping can only shrink errors on normalised data.
        assert row["clip"] <= row["no-clip"] + 1e-9
