"""Coverage for the experiment registry: every paper id is runnable.

The smoke tests exercise each regenerator directly on tiny settings;
this module pins the *registry* contract instead: the name set matches
the paper's tables/figures, every entry is a documented callable that
accepts the harness's ``fast`` switch, dispatch is case-insensitive,
and the stochastic method names flow through a regenerator end to end.
"""

from __future__ import annotations

import inspect

import pytest

from repro.baselines import STOCHASTIC_VARIANTS
from repro.exceptions import ValidationError
from repro.experiments.registry import EXPERIMENTS, run_experiment

EXPECTED_IDS = {
    "table4", "table5", "table6", "table7",
    "figure4a", "figure4b", "figure5", "figure6",
    "figure7", "figure8", "figure9",
}


class TestRegistryContract:
    def test_names_match_the_paper(self):
        assert set(EXPERIMENTS) == EXPECTED_IDS

    @pytest.mark.parametrize("name", sorted(EXPECTED_IDS))
    def test_entry_is_documented_callable(self, name):
        regenerator = EXPERIMENTS[name]
        assert callable(regenerator)
        assert regenerator.__doc__, f"{name} has no docstring"
        parameters = inspect.signature(regenerator).parameters
        assert "fast" in parameters, f"{name} lacks the fast switch"

    def test_unknown_name_raises(self):
        with pytest.raises(ValidationError, match="unknown experiment"):
            run_experiment("table99")

    def test_dispatch_is_case_insensitive(self):
        out = run_experiment(
            "TABLE4", methods=("mean",), datasets=("lake",), n_runs=1, fast=True
        )
        assert out["lake"]["mean"] > 0


class TestStochasticMethodsFlowThrough:
    def test_variant_names_are_accepted_by_a_table(self):
        out = run_experiment(
            "table4",
            methods=("smfl", "smfl_sgd"),
            datasets=("lake",),
            n_runs=1,
            fast=True,
        )
        assert set(out["lake"]) == {"smfl", "smfl_sgd"}
        assert all(v > 0 for v in out["lake"].values())

    def test_variant_names_are_known_imputers(self):
        assert set(STOCHASTIC_VARIANTS) == {
            "nmf_sgd", "smf_sgd", "smfl_sgd", "smfl_svrg",
        }
