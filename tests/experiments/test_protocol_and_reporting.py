"""Unit tests for the experiment protocol, reporting and registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.experiments import (
    DATASET_RANKS,
    EXPERIMENTS,
    format_table,
    prepare_trial,
    run_experiment,
    run_method_on_trial,
)
from repro.experiments.protocol import average_rms
from repro.experiments.reporting import format_series


class TestPrepareTrial:
    def test_imputation_trial_masks_attribute_columns(self):
        trial = prepare_trial("lake", missing_rate=0.1, seed=0, fast=True)
        spatial_part = trial.mask.observed[:, :2]
        assert spatial_part.all()
        assert trial.mask.n_unobserved > 0

    def test_table_v_masks_spatial_columns_too(self):
        trial = prepare_trial(
            "lake", missing_rate=0.2, seed=0, spatial_missing=True, fast=True
        )
        assert not trial.mask.observed[:, :2].all()

    def test_repair_trial_keeps_values_in_domain(self):
        trial = prepare_trial("lake", missing_rate=0.1, seed=0, task="repair", fast=True)
        rows, cols = trial.mask.unobserved_indices()
        for i, j in zip(rows[:20], cols[:20]):
            assert trial.x_missing[i, j] in trial.dataset.values[:, j]

    def test_holdout_rows_protected(self):
        trial = prepare_trial("farm", missing_rate=0.4, seed=1, fast=True)
        complete_rows = trial.mask.observed.all(axis=1).sum()
        # The holdout is min(100, n_rows // 4) complete tuples.
        expected = min(100, trial.dataset.n_rows // 4)
        assert complete_rows >= expected

    def test_unknown_task(self):
        with pytest.raises(ValueError, match="unknown task"):
            prepare_trial("lake", task="paint", fast=True)

    def test_deterministic_per_seed(self):
        a = prepare_trial("lake", seed=3, fast=True)
        b = prepare_trial("lake", seed=3, fast=True)
        assert np.array_equal(a.mask.observed, b.mask.observed)
        assert np.allclose(a.x_missing, b.x_missing)


class TestRunMethod:
    def test_returns_positive_rms(self):
        trial = prepare_trial("lake", seed=0, fast=True)
        rms = run_method_on_trial("mean", trial)
        assert rms > 0

    def test_overrides_applied(self):
        trial = prepare_trial("lake", seed=0, fast=True)
        base = run_method_on_trial("smf", trial)
        heavy = run_method_on_trial("smf", trial, overrides={"lam": 10.0})
        assert base != heavy

    def test_unknown_override_rejected(self):
        trial = prepare_trial("lake", seed=0, fast=True)
        with pytest.raises(AttributeError, match="no parameter"):
            run_method_on_trial("smf", trial, overrides={"bogus": 1})

    def test_rank_override(self):
        trial = prepare_trial("lake", seed=0, fast=True)
        assert run_method_on_trial("nmf", trial, rank=2) > 0

    def test_average_rms_runs(self):
        value = average_rms("mean", "lake", n_runs=2, fast=True)
        assert value > 0


class TestRanksConfig:
    def test_ranks_respect_column_limits(self):
        from repro.data import load_dataset

        for name, rank in DATASET_RANKS.items():
            data = load_dataset(name, n_rows=60)
            assert rank < data.n_cols or rank < 60


class TestReporting:
    def test_format_table_marks_minimum(self):
        table = format_table(
            {"row": {"a": 0.2, "b": 0.1}}, title="demo", precision=2
        )
        assert "demo" in table
        assert "0.10*" in table
        assert "0.20" in table and "0.20*" not in table

    def test_missing_cells_render_dash(self):
        table = format_table({"r1": {"a": 0.5}, "r2": {"b": 0.25}})
        assert "| -" in table

    def test_empty(self):
        assert "(empty)" in format_table({})

    def test_format_series(self):
        out = format_series({"knn": 0.5}, title="fig")
        assert "knn" in out and "0.5000" in out


class TestRegistry:
    def test_all_paper_ids_registered(self):
        expected = {
            "table4", "table5", "table6", "table7",
            "figure4a", "figure4b", "figure5", "figure6",
            "figure7", "figure8", "figure9",
        }
        assert expected == set(EXPERIMENTS)

    def test_unknown_experiment(self):
        with pytest.raises(ValidationError, match="unknown experiment"):
            run_experiment("table99")
