"""Paper-style aliases for ``run_experiment`` and its error reporting."""

from __future__ import annotations

import pytest

from repro.exceptions import ValidationError
from repro.experiments.registry import (
    EXPERIMENTS,
    normalize_experiment_name,
    run_experiment,
)

ALIASES = [
    ("table4", "table4"),
    ("TABLE4", "table4"),
    ("Table IV", "table4"),
    ("table iv", "table4"),
    ("Table_IV", "table4"),
    ("tbl-iv", "table4"),
    ("Table V", "table5"),
    ("Table VI", "table6"),
    ("Table VII", "table7"),
    ("table 7", "table7"),
    ("figure 9", "figure9"),
    ("Figure 9", "figure9"),
    ("Fig. 9", "figure9"),
    ("fig9", "figure9"),
    ("Fig. 4a", "figure4a"),
    ("FIGURE 4B", "figure4b"),
    ("figure_6", "figure6"),
]


class TestNormalization:
    @pytest.mark.parametrize("raw, canonical", ALIASES)
    def test_alias_map(self, raw, canonical):
        assert normalize_experiment_name(raw) == canonical
        assert canonical in EXPERIMENTS

    @pytest.mark.parametrize("canonical", sorted(EXPERIMENTS))
    def test_canonical_ids_are_fixed_points(self, canonical):
        assert normalize_experiment_name(canonical) == canonical

    def test_unrelated_names_come_back_cleaned(self):
        assert normalize_experiment_name("  My Experiment ") == "myexperiment"


class TestDispatch:
    def test_paper_alias_runs(self):
        out = run_experiment(
            "Table IV", methods=("mean",), datasets=("lake",), n_runs=1, fast=True
        )
        assert out["lake"]["mean"] > 0

    def test_figure_alias_runs(self):
        out = run_experiment(
            "Fig. 8", datasets=("lake",), ranks=(2,), n_runs=1, fast=True
        )
        assert set(out) == {"lake/smfl"}

    def test_error_reports_normalized_name(self):
        with pytest.raises(ValidationError) as excinfo:
            run_experiment("Table IX")
        message = str(excinfo.value)
        assert "'Table IX'" in message
        assert "normalized: 'tableix'" in message
        assert "table4" in message  # the available list

    def test_error_on_near_miss(self):
        with pytest.raises(ValidationError, match="normalized: 'figure10'"):
            run_experiment("Figure 10")
