"""Golden-regression harness: committed outputs for the paper artifacts.

Each case regenerates one experiment at a small, fast configuration and
compares every value against the committed fixture under
``tests/experiments/golden/`` to 1e-9 - on the serial path and again
through the parallel runner (``jobs=2`` with a fresh cache).  Any
numeric drift anywhere in the pipeline (data generation, injection,
solvers, aggregation, runner plumbing) fails loudly with the offending
path and a refresh hint.

Figure 9 is wall-clock timing, so its fixture pins the *structure*
(row/column labels) and the values are only checked for positive
finiteness - timings are measurements, not reproducible numbers.

Refreshing after an intentional numeric change::

    REPRO_REFRESH_GOLDEN=1 PYTHONPATH=src python -m pytest tests/experiments/test_golden.py

then commit the rewritten fixtures together with the change.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.experiments.registry import run_experiment
from repro.runner import RunnerConfig

GOLDEN_DIR = Path(__file__).parent / "golden"
REFRESH_ENV = "REPRO_REFRESH_GOLDEN"
TOLERANCE = 1e-9

CASES: dict[str, dict] = {
    "table4": {
        "kwargs": {
            "methods": ["knn", "mc", "softimpute", "nmf", "smf", "smfl"],
            "datasets": ["lake", "vehicle"],
            "missing_rate": 0.1,
            "n_runs": 2,
            "fast": True,
        },
        "mode": "values",
    },
    "table6": {
        "kwargs": {"datasets": ["lake"], "error_rate": 0.1, "n_runs": 2, "fast": True},
        "mode": "values",
    },
    "figure6": {
        "kwargs": {
            "datasets": ["lake"], "lams": [0.01, 1.0], "n_runs": 2, "fast": True,
        },
        "mode": "values",
    },
    "figure8": {
        "kwargs": {
            "datasets": ["lake"], "ranks": [2, 4], "n_runs": 2, "fast": True,
        },
        "mode": "values",
    },
    "figure9": {
        "kwargs": {
            "datasets": ["lake"], "row_counts": [120],
            "methods": ["softimpute", "smfl"], "fast": True,
        },
        "mode": "structure",  # wall-clock values cannot be pinned
    },
}

_REFRESH_HINT = (
    "If this numeric change is intentional, refresh the fixtures with\n"
    f"  {REFRESH_ENV}=1 PYTHONPATH=src python -m pytest "
    "tests/experiments/test_golden.py\n"
    "and commit them together with the change."
)


def _fixture_path(name: str) -> Path:
    return GOLDEN_DIR / f"{name}.json"


def _regenerate(name: str, runner: RunnerConfig | None = None) -> dict:
    kwargs = {k: _as_call_arg(v) for k, v in CASES[name]["kwargs"].items()}
    return run_experiment(name, **kwargs, runner=runner)


def _as_call_arg(value):
    return tuple(value) if isinstance(value, list) else value


def _drifts(fixture, regenerated, path=""):
    """Recursively collect every value drift beyond TOLERANCE."""
    problems: list[str] = []
    if isinstance(fixture, dict):
        if not isinstance(regenerated, dict) or set(fixture) != set(regenerated):
            problems.append(
                f"{path or '<root>'}: keys {sorted(fixture)} != "
                f"{sorted(regenerated) if isinstance(regenerated, dict) else regenerated}"
            )
            return problems
        for key in fixture:
            problems.extend(_drifts(fixture[key], regenerated[key], f"{path}[{key}]"))
        return problems
    if isinstance(fixture, float) and isinstance(regenerated, (int, float)):
        if not np.isclose(fixture, regenerated, rtol=0.0, atol=TOLERANCE):
            problems.append(
                f"{path}: fixture {fixture!r} vs regenerated {regenerated!r} "
                f"(|diff|={abs(fixture - regenerated):.3e} > {TOLERANCE})"
            )
        return problems
    if fixture != regenerated:
        problems.append(f"{path}: fixture {fixture!r} != regenerated {regenerated!r}")
    return problems


def _structure(result: dict) -> dict:
    return {row: sorted(cols) for row, cols in result.items()}


def _check(name: str, result: dict) -> None:
    path = _fixture_path(name)
    mode = CASES[name]["mode"]
    if os.environ.get(REFRESH_ENV):
        GOLDEN_DIR.mkdir(exist_ok=True)
        payload = {
            "experiment": name,
            "kwargs": CASES[name]["kwargs"],
            "mode": mode,
            "values": _structure(result) if mode == "structure" else result,
        }
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return
    if not path.exists():
        pytest.fail(
            f"golden fixture missing: {path}\n"
            f"Generate it with {REFRESH_ENV}=1 (see module docstring)."
        )
    fixture = json.loads(path.read_text())
    assert fixture["kwargs"] == CASES[name]["kwargs"], (
        f"golden config for {name!r} changed; the fixture was recorded with "
        f"{fixture['kwargs']}.\n{_REFRESH_HINT}"
    )
    if mode == "structure":
        problems = _drifts(fixture["values"], _structure(result))
        for row, cols in result.items():
            for col, value in cols.items():
                if not (np.isfinite(value) and value > 0):
                    problems.append(f"[{row}][{col}]: non-positive timing {value!r}")
    else:
        problems = _drifts(fixture["values"], result)
    if problems:
        details = "\n  ".join(problems)
        pytest.fail(
            f"golden regression for {name!r} - {len(problems)} value(s) drifted "
            f"beyond {TOLERANCE}:\n  {details}\n{_REFRESH_HINT}"
        )


@pytest.mark.parametrize("name", sorted(CASES), ids=str)
def test_golden_serial(name):
    """The legacy path: serial, cache-free, straight through run_grid."""
    _check(name, _regenerate(name))


@pytest.mark.parametrize("name", sorted(CASES), ids=str)
def test_golden_parallel_jobs2(name, tmp_path):
    """The fan-out path: two workers, fresh content-addressed cache."""
    if os.environ.get(REFRESH_ENV):
        pytest.skip("fixtures are refreshed by the serial pass")
    runner = RunnerConfig(jobs=2, cache_dir=str(tmp_path / "cache"))
    _check(name, _regenerate(name, runner=runner))


def test_fixture_files_match_case_table():
    """Every committed fixture corresponds to a case, and vice versa."""
    if os.environ.get(REFRESH_ENV):
        pytest.skip("refresh mode")
    on_disk = {p.stem for p in GOLDEN_DIR.glob("*.json")}
    assert on_disk == set(CASES)
