"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import SpatialDataset, load_dataset
from repro.masking import MissingSpec, ObservationMask, inject_missing


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator for ad-hoc randomness in tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_dataset() -> SpatialDataset:
    """A small lake-style dataset (fast enough for model fits)."""
    return load_dataset("lake", n_rows=80, random_state=0)


@pytest.fixture
def tiny_trial(tiny_dataset) -> tuple[SpatialDataset, np.ndarray, ObservationMask]:
    """(dataset, corrupted matrix, mask) with 10% missing attribute cells."""
    x_missing, mask = inject_missing(
        tiny_dataset.values,
        MissingSpec(missing_rate=0.1, columns=tiny_dataset.attribute_columns),
        random_state=0,
    )
    return tiny_dataset, x_missing, mask


@pytest.fixture
def small_nonneg_matrix(rng) -> np.ndarray:
    """A 30x6 non-negative matrix with mild low-rank structure."""
    u = rng.random((30, 3))
    v = rng.random((3, 6))
    return u @ v + 0.01 * rng.random((30, 6))
