"""Unit + property tests for the Kuhn-Munkres assignment."""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering import hungarian_assignment


def brute_force_min_cost(cost: np.ndarray) -> float:
    n, m = cost.shape
    if n <= m:
        best = np.inf
        for perm in itertools.permutations(range(m), n):
            best = min(best, sum(cost[i, perm[i]] for i in range(n)))
        return best
    return brute_force_min_cost(cost.T)


class TestHungarianBasics:
    def test_simple_2x2(self):
        rows, cols = hungarian_assignment(np.array([[4.0, 1.0], [2.0, 8.0]]))
        assert list(zip(rows, cols)) == [(0, 1), (1, 0)]

    def test_identity_is_optimal(self):
        cost = np.eye(4) * -1.0 + 1.0  # zeros on diagonal
        rows, cols = hungarian_assignment(cost)
        assert np.array_equal(rows, cols)

    def test_rectangular_wide(self):
        cost = np.array([[1.0, 0.0, 5.0], [0.0, 9.0, 5.0]])
        rows, cols = hungarian_assignment(cost)
        assert len(rows) == 2
        assert cost[rows, cols].sum() == pytest.approx(0.0)

    def test_rectangular_tall(self):
        cost = np.array([[1.0, 0.0], [0.0, 9.0], [5.0, 5.0]])
        rows, cols = hungarian_assignment(cost)
        assert len(rows) == 2
        assert cost[rows, cols].sum() == pytest.approx(0.0)

    def test_negative_costs(self):
        cost = np.array([[-5.0, 0.0], [0.0, -5.0]])
        rows, cols = hungarian_assignment(cost)
        assert cost[rows, cols].sum() == pytest.approx(-10.0)

    def test_rows_sorted_and_unique(self, rng):
        cost = rng.random((6, 6))
        rows, cols = hungarian_assignment(cost)
        assert np.array_equal(rows, np.arange(6))
        assert len(set(cols.tolist())) == 6


class TestHungarianOptimality:
    @pytest.mark.parametrize("n,m", [(3, 3), (4, 4), (3, 5), (5, 3), (2, 6)])
    def test_matches_brute_force(self, rng, n, m):
        cost = rng.random((n, m))
        rows, cols = hungarian_assignment(cost)
        assert cost[rows, cols].sum() == pytest.approx(brute_force_min_cost(cost))

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(1, 5),
        m=st.integers(1, 5),
    )
    def test_property_optimal(self, seed, n, m):
        rng = np.random.default_rng(seed)
        cost = rng.integers(-10, 10, size=(n, m)).astype(float)
        rows, cols = hungarian_assignment(cost)
        assert len(rows) == min(n, m)
        assert cost[rows, cols].sum() == pytest.approx(brute_force_min_cost(cost))
