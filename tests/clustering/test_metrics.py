"""Unit tests for clustering metrics (Section IV-B4 accuracy, etc.)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering import (
    clustering_accuracy,
    confusion_matrix,
    normalized_mutual_info,
    purity,
)
from repro.exceptions import ValidationError


class TestConfusionMatrix:
    def test_counts(self):
        truth = np.array([0, 0, 1, 1])
        pred = np.array([1, 1, 0, 1])
        table = confusion_matrix(truth, pred)
        assert table.tolist() == [[0, 2], [1, 1]]

    def test_string_labels(self):
        table = confusion_matrix(np.array(["a", "b"]), np.array(["x", "x"]))
        assert table.sum() == 2

    def test_length_mismatch(self):
        with pytest.raises(ValidationError, match="equal length"):
            confusion_matrix(np.array([0, 1]), np.array([0]))

    def test_rejects_2d(self):
        with pytest.raises(ValidationError, match="1-dimensional"):
            confusion_matrix(np.zeros((2, 2)), np.zeros(4))


class TestClusteringAccuracy:
    def test_perfect_after_relabeling(self):
        truth = np.array([0, 0, 1, 1, 2, 2])
        pred = np.array([2, 2, 0, 0, 1, 1])  # permuted labels
        assert clustering_accuracy(truth, pred) == pytest.approx(1.0)

    def test_half_right(self):
        truth = np.array([0, 0, 1, 1])
        pred = np.array([0, 1, 0, 1])
        assert clustering_accuracy(truth, pred) == pytest.approx(0.5)

    def test_in_unit_interval(self, rng):
        truth = rng.integers(0, 3, size=50)
        pred = rng.integers(0, 4, size=50)
        acc = clustering_accuracy(truth, pred)
        assert 0.0 <= acc <= 1.0

    def test_at_least_majority_share(self, rng):
        # Accuracy >= the share of the largest true class (the optimal
        # sigma can always map one predicted cluster to it).
        truth = np.array([0] * 30 + [1] * 10)
        pred = np.zeros(40, dtype=int)
        assert clustering_accuracy(truth, pred) == pytest.approx(0.75)


class TestPurity:
    def test_perfect(self):
        labels = np.array([0, 1, 2, 0])
        assert purity(labels, labels) == pytest.approx(1.0)

    def test_bounded_below_by_accuracy_logic(self, rng):
        truth = rng.integers(0, 3, size=60)
        pred = rng.integers(0, 3, size=60)
        assert purity(truth, pred) >= clustering_accuracy(truth, pred) - 1e-12


class TestNMI:
    def test_identical_partitions(self):
        labels = np.array([0, 0, 1, 1, 2])
        assert normalized_mutual_info(labels, labels) == pytest.approx(1.0)

    def test_permuted_labels_still_one(self):
        truth = np.array([0, 0, 1, 1])
        pred = np.array([1, 1, 0, 0])
        assert normalized_mutual_info(truth, pred) == pytest.approx(1.0)

    def test_single_cluster_convention(self):
        truth = np.zeros(5, dtype=int)
        pred = np.zeros(5, dtype=int)
        assert normalized_mutual_info(truth, pred) == pytest.approx(1.0)

    def test_independent_partitions_near_zero(self, rng):
        truth = rng.integers(0, 2, size=2000)
        pred = rng.integers(0, 2, size=2000)
        assert normalized_mutual_info(truth, pred) < 0.02

    def test_range(self, rng):
        truth = rng.integers(0, 4, size=100)
        pred = rng.integers(0, 3, size=100)
        assert 0.0 <= normalized_mutual_info(truth, pred) <= 1.0
