"""Unit + property tests for the from-scratch K-means."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering import KMeans, kmeans_centers
from repro.exceptions import DegenerateDataError, NotFittedError, ValidationError


def three_blobs(rng, per=30, spread=0.05):
    centers = np.array([[0.0, 0.0], [5.0, 5.0], [10.0, 0.0]])
    pts = np.vstack([
        c + rng.normal(scale=spread, size=(per, 2)) for c in centers
    ])
    labels = np.repeat(np.arange(3), per)
    return pts, labels, centers


class TestKMeansBasics:
    def test_recovers_separated_blobs(self, rng):
        pts, labels, centers = three_blobs(rng)
        model = KMeans(n_clusters=3, random_state=0).fit(pts)
        # Each found center is near one true center.
        d = np.linalg.norm(model.centers_[:, None, :] - centers[None], axis=2)
        assert (d.min(axis=1) < 0.5).all()

    def test_labels_consistent_with_centers(self, rng):
        pts, _, _ = three_blobs(rng)
        model = KMeans(n_clusters=3, random_state=0).fit(pts)
        d = np.linalg.norm(pts[:, None, :] - model.centers_[None], axis=2)
        assert np.array_equal(model.labels_, np.argmin(d, axis=1))

    def test_deterministic_given_seed(self, rng):
        pts, _, _ = three_blobs(rng)
        a = KMeans(n_clusters=3, random_state=7).fit(pts)
        b = KMeans(n_clusters=3, random_state=7).fit(pts)
        assert np.allclose(a.centers_, b.centers_)

    def test_predict_assigns_nearest(self, rng):
        pts, _, _ = three_blobs(rng)
        model = KMeans(n_clusters=3, random_state=0).fit(pts)
        new = np.array([[0.1, -0.1]])
        pred = model.predict(new)
        d = np.linalg.norm(model.centers_ - new[0], axis=1)
        assert pred[0] == np.argmin(d)

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            KMeans(n_clusters=2).predict(np.zeros((2, 2)))

    def test_too_many_clusters_raises(self):
        with pytest.raises(DegenerateDataError, match="exceeds"):
            KMeans(n_clusters=5).fit(np.zeros((3, 2)))

    def test_invalid_params(self):
        with pytest.raises(ValidationError):
            KMeans(n_clusters=0)
        with pytest.raises(ValidationError):
            KMeans(n_clusters=2, max_iter=0)
        with pytest.raises(ValidationError):
            KMeans(n_clusters=2, tol=-1.0)

    def test_identical_points(self):
        pts = np.ones((10, 2))
        model = KMeans(n_clusters=3, random_state=0).fit(pts)
        assert model.inertia_ == pytest.approx(0.0)

    def test_k_equals_n(self, rng):
        pts = rng.random((5, 2))
        model = KMeans(n_clusters=5, random_state=0).fit(pts)
        assert model.inertia_ == pytest.approx(0.0, abs=1e-12)

    def test_fit_predict_matches_labels(self, rng):
        pts, _, _ = three_blobs(rng)
        model = KMeans(n_clusters=3, random_state=0)
        labels = model.fit_predict(pts)
        assert np.array_equal(labels, model.labels_)


class TestKMeansProperties:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 5_000), n=st.integers(6, 50), k=st.integers(1, 5))
    def test_inertia_never_worse_than_single_cluster(self, seed, n, k):
        rng = np.random.default_rng(seed)
        pts = rng.random((n, 2))
        k = min(k, n)
        model = KMeans(n_clusters=k, random_state=0).fit(pts)
        single = ((pts - pts.mean(axis=0)) ** 2).sum()
        assert model.inertia_ <= single + 1e-9

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 5_000))
    def test_every_cluster_has_a_center(self, seed):
        rng = np.random.default_rng(seed)
        pts = rng.random((40, 2))
        model = KMeans(n_clusters=4, random_state=0).fit(pts)
        assert model.centers_.shape == (4, 2)
        assert np.isfinite(model.centers_).all()


class TestKmeansCentersHelper:
    def test_shape(self, rng):
        pts = rng.random((30, 2))
        centers = kmeans_centers(pts, 4, random_state=0)
        assert centers.shape == (4, 2)
