"""Unit + property tests for the KD-tree."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import DegenerateDataError
from repro.spatial import KDTree
from repro.spatial.distances import pairwise_sq_euclidean


def brute_force_knn(points: np.ndarray, queries: np.ndarray, k: int):
    d2 = pairwise_sq_euclidean(queries, points)
    idx = np.argsort(d2, axis=1, kind="stable")[:, :k]
    dist = np.sqrt(np.take_along_axis(d2, idx, axis=1))
    return dist, idx


class TestKDTreeBasics:
    def test_single_nearest(self):
        tree = KDTree(np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0]]))
        dist, idx = tree.query(np.array([[0.9, 1.05]]), k=1)
        assert idx[0, 0] == 1
        assert dist[0, 0] == pytest.approx(np.hypot(0.1, 0.05))

    def test_k_larger_than_points_raises(self):
        tree = KDTree(np.zeros((3, 2)))
        with pytest.raises(DegenerateDataError, match="k=4"):
            tree.query(np.zeros((1, 2)), k=4)

    def test_dim_mismatch_raises(self):
        tree = KDTree(np.zeros((3, 2)))
        with pytest.raises(DegenerateDataError, match="dimensionality"):
            tree.query(np.zeros((1, 3)), k=1)

    def test_duplicate_points_handled(self):
        pts = np.array([[1.0, 1.0]] * 40 + [[2.0, 2.0]] * 5)
        tree = KDTree(pts, leaf_size=4)
        dist, idx = tree.query(np.array([[1.0, 1.0]]), k=3)
        assert np.allclose(dist, 0.0)

    def test_properties(self):
        tree = KDTree(np.zeros((7, 3)))
        assert tree.n_points == 7
        assert tree.n_dims == 3

    def test_distances_sorted(self, rng):
        pts = rng.random((50, 2))
        tree = KDTree(pts)
        dist, _ = tree.query(rng.random((5, 2)), k=10)
        assert (np.diff(dist, axis=1) >= -1e-12).all()


class TestKDTreeAgainstBruteForce:
    @pytest.mark.parametrize("n,d,k", [(30, 2, 1), (100, 2, 5), (64, 3, 7), (200, 4, 3)])
    def test_matches_brute_force(self, rng, n, d, k):
        pts = rng.random((n, d))
        queries = rng.random((10, d))
        tree = KDTree(pts, leaf_size=8)
        dist_t, _ = tree.query(queries, k=k)
        dist_b, _ = brute_force_knn(pts, queries, k)
        # Indices may differ on exact ties; distances must agree.
        assert np.allclose(np.sort(dist_t, axis=1), np.sort(dist_b, axis=1))

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(5, 60),
        k=st.integers(1, 5),
    )
    def test_property_distances_match_brute(self, seed, n, k):
        rng = np.random.default_rng(seed)
        pts = rng.random((n, 2))
        queries = rng.random((3, 2))
        tree = KDTree(pts, leaf_size=4)
        dist_t, _ = tree.query(queries, k=min(k, n))
        dist_b, _ = brute_force_knn(pts, queries, min(k, n))
        assert np.allclose(dist_t, dist_b)
