"""Unit + property tests for the degree matrix and graph Laplacian."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.spatial import (
    degree_matrix,
    graph_laplacian,
    knn_similarity_matrix,
    laplacian_from_points,
)


class TestDegreeMatrix:
    def test_diagonal_row_sums(self):
        sim = np.array([[0.0, 1.0], [1.0, 0.0]])
        deg = degree_matrix(sim)
        assert np.allclose(deg, np.eye(2))

    def test_rejects_asymmetric(self):
        with pytest.raises(ValidationError, match="symmetric"):
            degree_matrix(np.array([[0.0, 1.0], [0.0, 0.0]]))

    def test_rejects_negative(self):
        with pytest.raises(ValidationError, match="non-negative"):
            degree_matrix(np.array([[0.0, -1.0], [-1.0, 0.0]]))

    def test_rejects_non_square(self):
        with pytest.raises(ValidationError, match="square"):
            degree_matrix(np.zeros((2, 3)))


class TestGraphLaplacian:
    def test_zero_row_sums(self, rng):
        sim = knn_similarity_matrix(rng.random((20, 2)), 3)
        lap = graph_laplacian(sim)
        assert np.allclose(lap.sum(axis=1), 0.0)

    def test_positive_semidefinite(self, rng):
        sim = knn_similarity_matrix(rng.random((20, 2)), 3)
        lap = graph_laplacian(sim)
        eigenvalues = np.linalg.eigvalsh(lap)
        assert eigenvalues.min() >= -1e-9

    def test_quadratic_form_equals_pairwise_sum(self, rng):
        sim = knn_similarity_matrix(rng.random((12, 2)), 2)
        lap = graph_laplacian(sim)
        u = rng.random((12, 3))
        quad = float(np.sum(u * (lap @ u)))
        pairwise = 0.5 * sum(
            sim[i, j] * np.sum((u[i] - u[j]) ** 2)
            for i in range(12)
            for j in range(12)
        )
        assert quad == pytest.approx(pairwise, rel=1e-9)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(5, 30), p=st.integers(1, 4))
    def test_property_psd_and_zero_rowsum(self, seed, n, p):
        rng = np.random.default_rng(seed)
        p = min(p, n - 1)
        sim = knn_similarity_matrix(rng.random((n, 2)), p)
        lap = graph_laplacian(sim)
        assert np.allclose(lap.sum(axis=1), 0.0, atol=1e-9)
        assert np.linalg.eigvalsh(lap).min() >= -1e-8


class TestLaplacianFromPoints:
    def test_consistency(self, rng):
        pts = rng.random((15, 2))
        sim, deg, lap = laplacian_from_points(pts, 3)
        assert np.allclose(lap, deg - sim)
        assert np.allclose(np.diag(deg), sim.sum(axis=1))
