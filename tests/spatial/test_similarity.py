"""Unit tests for the Formula 3 similarity matrix."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DegenerateDataError
from repro.spatial import knn_similarity_matrix, prepare_spatial_coordinates


class TestPrepareSpatialCoordinates:
    def test_passthrough_when_complete(self, rng):
        coords = rng.random((10, 2))
        out = prepare_spatial_coordinates(coords)
        assert np.allclose(out, coords)

    def test_nan_filled_with_column_mean(self):
        coords = np.array([[1.0, 0.0], [3.0, 0.0], [np.nan, 0.0]])
        out = prepare_spatial_coordinates(coords)
        assert out[2, 0] == pytest.approx(2.0)

    def test_explicit_mask_overrides_values(self):
        coords = np.array([[1.0, 0.0], [3.0, 0.0], [99.0, 0.0]])
        observed = np.array([[True, True], [True, True], [False, True]])
        out = prepare_spatial_coordinates(coords, observed)
        assert out[2, 0] == pytest.approx(2.0)

    def test_all_missing_column_raises(self):
        coords = np.array([[np.nan, 1.0], [np.nan, 2.0]])
        with pytest.raises(DegenerateDataError, match="no observed entries"):
            prepare_spatial_coordinates(coords)

    def test_does_not_mutate_input(self):
        coords = np.array([[1.0, 0.0], [np.nan, 0.0]])
        prepare_spatial_coordinates(coords)
        assert np.isnan(coords[1, 0])


class TestKnnSimilarityMatrix:
    def test_binary_symmetric_zero_diagonal(self, rng):
        coords = rng.random((25, 2))
        sim = knn_similarity_matrix(coords, 3)
        assert set(np.unique(sim)) <= {0.0, 1.0}
        assert np.allclose(sim, sim.T)
        assert np.allclose(np.diag(sim), 0.0)

    def test_each_row_has_at_least_p_links(self, rng):
        coords = rng.random((25, 2))
        sim = knn_similarity_matrix(coords, 3)
        assert (sim.sum(axis=1) >= 3).all()

    def test_or_semantics(self):
        # Point 2 is far; its p=1 neighbour is point 1, so d_{12}=1 even
        # though point 1's nearest is point 0.
        coords = np.array([[0.0, 0.0], [1.0, 0.0], [5.0, 0.0]])
        sim = knn_similarity_matrix(coords, 1)
        assert sim[1, 2] == 1.0
        assert sim[2, 1] == 1.0

    def test_handles_missing_spatial_cells(self):
        coords = np.array([[0.0, 0.0], [1.0, 0.0], [np.nan, 0.0], [3.0, 0.0]])
        sim = knn_similarity_matrix(coords, 1)
        assert sim.shape == (4, 4)
        assert np.allclose(sim, sim.T)
