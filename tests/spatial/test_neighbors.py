"""Unit tests for p-nearest-neighbour search."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DegenerateDataError
from repro.spatial import knn_indices


class TestKnnIndices:
    def test_line_neighbours(self):
        pts = np.array([[0.0], [1.0], [2.0], [10.0]]).reshape(4, 1)
        out = knn_indices(pts, 1)
        assert out[0, 0] == 1
        assert out[1, 0] in (0, 2)
        assert out[3, 0] == 2

    def test_excludes_self(self, rng):
        pts = rng.random((20, 2))
        out = knn_indices(pts, 3)
        for i in range(20):
            assert i not in out[i]

    def test_p_too_large(self):
        with pytest.raises(DegenerateDataError, match="p=5"):
            knn_indices(np.zeros((4, 2)), 5)

    def test_unknown_method(self, rng):
        with pytest.raises(ValueError, match="unknown method"):
            knn_indices(rng.random((5, 2)), 1, method="magic")

    def test_brute_and_kdtree_agree_on_distances(self, rng):
        pts = rng.random((60, 2))
        brute = knn_indices(pts, 4, method="brute")
        tree = knn_indices(pts, 4, method="kdtree")
        # Distances must agree even if tie-broken indices differ.
        for i in range(60):
            d_b = np.sort(np.linalg.norm(pts[brute[i]] - pts[i], axis=1))
            d_t = np.sort(np.linalg.norm(pts[tree[i]] - pts[i], axis=1))
            assert np.allclose(d_b, d_t)

    def test_duplicate_points(self):
        pts = np.array([[1.0, 1.0]] * 5 + [[2.0, 2.0]] * 5)
        out = knn_indices(pts, 3, method="kdtree")
        assert out.shape == (10, 3)
        for i in range(10):
            assert i not in out[i]

    def test_ordered_by_distance(self, rng):
        pts = rng.random((30, 3))
        out = knn_indices(pts, 5)
        for i in range(30):
            dists = np.linalg.norm(pts[out[i]] - pts[i], axis=1)
            assert (np.diff(dists) >= -1e-12).all()
