"""Unit tests for the content-addressed spatial graph cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.spatial import (
    clear_graph_cache,
    graph_cache_info,
    laplacian_from_points,
    spatial_graph,
)
from repro.spatial.graph_cache import _MAX_ENTRIES


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_graph_cache()
    yield
    clear_graph_cache()


@pytest.fixture
def points(rng):
    return rng.random((25, 2)) * 10.0


class TestHitIdentity:
    def test_second_call_returns_same_objects(self, points):
        first = spatial_graph(points, 3)
        second = spatial_graph(points, 3)
        assert second is first
        assert second.similarity is first.similarity
        assert second.laplacian is first.laplacian

    def test_matches_uncached_build(self, points):
        graph = spatial_graph(points, 3)
        similarity, degree, laplacian = laplacian_from_points(points, 3)
        assert np.array_equal(graph.similarity, similarity)
        assert np.array_equal(graph.degree, np.diag(degree))
        assert np.array_equal(graph.laplacian, laplacian)

    def test_copy_of_coordinates_still_hits(self, points):
        # Content addressing: the key is the bytes, not the object.
        assert spatial_graph(points.copy(), 3) is spatial_graph(points, 3)


class TestKeySensitivity:
    def test_different_p_misses(self, points):
        assert spatial_graph(points, 3) is not spatial_graph(points, 4)

    def test_different_coordinates_miss(self, points):
        moved = points.copy()
        moved[0, 0] += 1e-9
        assert spatial_graph(points, 3) is not spatial_graph(moved, 3)

    def test_mask_participates_in_key(self, points):
        observed = np.ones(points.shape, dtype=bool)
        observed[1, 0] = False
        with_mask = spatial_graph(points, 3, observed=observed)
        without = spatial_graph(points, 3)
        assert with_mask is not without

    def test_method_and_strategy_participate(self, points):
        a = spatial_graph(points, 3, method="brute")
        b = spatial_graph(points, 3, method="kdtree")
        assert a is not b


class TestSharedEntriesAreReadOnly:
    def test_arrays_reject_writes(self, points):
        graph = spatial_graph(points, 3)
        for arr in (graph.similarity, graph.degree, graph.laplacian):
            with pytest.raises(ValueError):
                arr[0] = 1.0


class TestEvictionAndClear:
    def test_lru_eviction_caps_entries(self, rng):
        for i in range(_MAX_ENTRIES + 4):
            spatial_graph(rng.random((12, 2)) + i, 3)
        assert graph_cache_info()["entries"] == _MAX_ENTRIES

    def test_oldest_entry_evicted_first(self, rng):
        batches = [rng.random((12, 2)) + i for i in range(_MAX_ENTRIES + 1)]
        first = spatial_graph(batches[0], 3)
        for pts in batches[1:]:
            spatial_graph(pts, 3)
        # The first build fell off the LRU: same inputs rebuild fresh.
        assert spatial_graph(batches[0], 3) is not first

    def test_touching_an_entry_refreshes_it(self, rng):
        batches = [rng.random((12, 2)) + i for i in range(_MAX_ENTRIES)]
        first = spatial_graph(batches[0], 3)
        for pts in batches[1:]:
            spatial_graph(pts, 3)
        spatial_graph(batches[0], 3)  # move to MRU position
        spatial_graph(rng.random((12, 2)) + 99, 3)  # evicts the 2nd entry
        assert spatial_graph(batches[0], 3) is first

    def test_clear_drops_everything(self, points):
        graph = spatial_graph(points, 3)
        clear_graph_cache()
        assert graph_cache_info()["entries"] == 0
        assert spatial_graph(points, 3) is not graph
