"""Unit tests for repro.spatial.distances."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.spatial import euclidean_distances, haversine_distances, pairwise_sq_euclidean


class TestPairwiseSqEuclidean:
    def test_matches_naive(self, rng):
        a = rng.random((8, 3))
        b = rng.random((5, 3))
        out = pairwise_sq_euclidean(a, b)
        naive = ((a[:, None, :] - b[None, :, :]) ** 2).sum(axis=2)
        assert np.allclose(out, naive)

    def test_self_distances_zero_diagonal(self, rng):
        a = rng.random((6, 2))
        out = pairwise_sq_euclidean(a)
        assert np.allclose(np.diag(out), 0.0)

    def test_never_negative(self, rng):
        # Cancellation-prone: nearly identical large-magnitude points.
        a = 1e8 + rng.random((10, 2)) * 1e-6
        out = pairwise_sq_euclidean(a)
        assert (out >= 0.0).all()

    def test_dimension_mismatch(self, rng):
        with pytest.raises(ValidationError, match="dimension mismatch"):
            pairwise_sq_euclidean(rng.random((3, 2)), rng.random((3, 3)))

    def test_symmetry(self, rng):
        a = rng.random((7, 4))
        out = pairwise_sq_euclidean(a)
        assert np.allclose(out, out.T)


class TestEuclideanDistances:
    def test_known_values(self):
        a = np.array([[0.0, 0.0], [3.0, 4.0]])
        out = euclidean_distances(a)
        assert out[0, 1] == pytest.approx(5.0)

    def test_triangle_inequality(self, rng):
        pts = rng.random((10, 3))
        d = euclidean_distances(pts)
        for i in range(10):
            for j in range(10):
                for k in range(10):
                    assert d[i, j] <= d[i, k] + d[k, j] + 1e-9


class TestHaversineDistances:
    def test_zero_for_same_point(self):
        coords = np.array([[40.0, -70.0]])
        assert haversine_distances(coords)[0, 0] == pytest.approx(0.0, abs=1e-9)

    def test_equator_degree(self):
        # One degree of longitude at the equator is ~111.19 km.
        coords = np.array([[0.0, 0.0], [0.0, 1.0]])
        out = haversine_distances(coords)
        assert out[0, 1] == pytest.approx(111.19, rel=0.01)

    def test_antipodal(self):
        coords = np.array([[0.0, 0.0], [0.0, 180.0]])
        out = haversine_distances(coords)
        assert out[0, 1] == pytest.approx(np.pi * 6371.0088, rel=0.001)

    def test_requires_two_columns(self):
        with pytest.raises(ValidationError, match="2 columns"):
            haversine_distances(np.zeros((2, 3)))

    def test_symmetry(self, rng):
        coords = rng.uniform(-80, 80, size=(6, 2))
        out = haversine_distances(coords)
        assert np.allclose(out, out.T, atol=1e-9)
