"""Unit tests for repro.spatial.distances."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.spatial import euclidean_distances, haversine_distances, pairwise_sq_euclidean


class TestPairwiseSqEuclidean:
    def test_matches_naive(self, rng):
        a = rng.random((8, 3))
        b = rng.random((5, 3))
        out = pairwise_sq_euclidean(a, b)
        naive = ((a[:, None, :] - b[None, :, :]) ** 2).sum(axis=2)
        assert np.allclose(out, naive)

    def test_self_distances_zero_diagonal(self, rng):
        a = rng.random((6, 2))
        out = pairwise_sq_euclidean(a)
        assert np.allclose(np.diag(out), 0.0)

    def test_never_negative(self, rng):
        # Cancellation-prone: nearly identical large-magnitude points.
        a = 1e8 + rng.random((10, 2)) * 1e-6
        out = pairwise_sq_euclidean(a)
        assert (out >= 0.0).all()

    def test_dimension_mismatch(self, rng):
        with pytest.raises(ValidationError, match="dimension mismatch"):
            pairwise_sq_euclidean(rng.random((3, 2)), rng.random((3, 3)))

    def test_symmetry(self, rng):
        a = rng.random((7, 4))
        out = pairwise_sq_euclidean(a)
        assert np.allclose(out, out.T)


class TestEuclideanDistances:
    def test_known_values(self):
        a = np.array([[0.0, 0.0], [3.0, 4.0]])
        out = euclidean_distances(a)
        assert out[0, 1] == pytest.approx(5.0)

    def test_triangle_inequality(self, rng):
        pts = rng.random((10, 3))
        d = euclidean_distances(pts)
        for i in range(10):
            for j in range(10):
                for k in range(10):
                    assert d[i, j] <= d[i, k] + d[k, j] + 1e-9


class TestHaversineDistances:
    def test_zero_for_same_point(self):
        coords = np.array([[40.0, -70.0]])
        assert haversine_distances(coords)[0, 0] == pytest.approx(0.0, abs=1e-9)

    def test_equator_degree(self):
        # One degree of longitude at the equator is ~111.19 km.
        coords = np.array([[0.0, 0.0], [0.0, 1.0]])
        out = haversine_distances(coords)
        assert out[0, 1] == pytest.approx(111.19, rel=0.01)

    def test_antipodal(self):
        coords = np.array([[0.0, 0.0], [0.0, 180.0]])
        out = haversine_distances(coords)
        assert out[0, 1] == pytest.approx(np.pi * 6371.0088, rel=0.001)

    def test_requires_two_columns(self):
        with pytest.raises(ValidationError, match="2 columns"):
            haversine_distances(np.zeros((2, 3)))

    def test_symmetry(self, rng):
        coords = rng.uniform(-80, 80, size=(6, 2))
        out = haversine_distances(coords)
        assert np.allclose(out, out.T, atol=1e-9)


class TestOutAndChunkedPaths:
    def test_out_only_is_bit_identical_to_plain(self, rng):
        a = rng.random((40, 3))
        b = rng.random((17, 3))
        plain = pairwise_sq_euclidean(a, b)
        out = np.empty((40, 17))
        result = pairwise_sq_euclidean(a, b, out=out)
        assert result is out
        assert np.array_equal(out, plain)

    def test_out_buffer_reusable_across_calls(self, rng):
        a = rng.random((10, 2))
        b = rng.random((8, 2))
        out = np.empty((10, 8))
        first = pairwise_sq_euclidean(a, b, out=out).copy()
        pairwise_sq_euclidean(a + 1.0, b, out=out)
        assert not np.array_equal(out, first)
        assert np.array_equal(
            out, pairwise_sq_euclidean(a + 1.0, b)
        )

    def test_chunked_numerically_equivalent(self, rng):
        # Row-blocking changes the gemm's internal blocking, so the
        # contract is tight closeness, not bit-identity.
        a = rng.random((50, 2))
        plain = pairwise_sq_euclidean(a)
        chunked = pairwise_sq_euclidean(a, chunk_rows=16)
        assert np.allclose(chunked, plain, rtol=0.0, atol=1e-12)

    def test_chunk_not_dividing_n_covers_all_rows(self, rng):
        a = rng.random((23, 3))
        b = rng.random((9, 3))
        chunked = pairwise_sq_euclidean(a, b, chunk_rows=7)
        assert np.allclose(chunked, pairwise_sq_euclidean(a, b), atol=1e-12)

    def test_out_shape_validated(self, rng):
        a = rng.random((5, 2))
        with pytest.raises(ValidationError, match="shape"):
            pairwise_sq_euclidean(a, out=np.empty((4, 5)))

    def test_chunk_rows_validated(self, rng):
        a = rng.random((5, 2))
        with pytest.raises(ValidationError, match="chunk_rows"):
            pairwise_sq_euclidean(a, chunk_rows=0)


class TestChunkedKnnBrute:
    def test_one_shot_matches_naive(self, rng):
        from repro.spatial.neighbors import _knn_brute

        pts = rng.random((60, 2))
        out = _knn_brute(pts, 5)
        d2 = ((pts[:, None, :] - pts[None, :, :]) ** 2).sum(axis=2)
        np.fill_diagonal(d2, np.inf)
        expected = np.argsort(d2, axis=1, kind="stable")[:, :5]
        assert np.array_equal(out, expected)

    def test_chunked_matches_one_shot_neighbour_lists(self, rng, monkeypatch):
        import repro.spatial.neighbors as neighbors

        pts = rng.random((90, 2))
        one_shot = neighbors._knn_brute(pts, 5)
        # Shrink the chunk threshold so the same points take the
        # row-blocked path (random coordinates have no distance ties,
        # so last-ulp gemm differences cannot reorder neighbours).
        monkeypatch.setattr(neighbors, "DISTANCE_CHUNK_ROWS", 32)
        chunked = neighbors._knn_brute(pts, 5)
        assert np.array_equal(chunked, one_shot)
