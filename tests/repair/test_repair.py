"""Unit tests for the repair substrate (detection, HoloClean, Baran,
MF-based repair)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SMFL
from repro.exceptions import ValidationError
from repro.masking import ErrorSpec, ObservationMask, inject_errors
from repro.metrics import rms_over_mask
from repro.repair import (
    BaranRepairer,
    HoloCleanRepairer,
    MFRepairer,
    OracleDetector,
    StatisticalDetector,
)


@pytest.fixture
def dirty_problem(tiny_dataset):
    x_dirty, mask = inject_errors(
        tiny_dataset.values, ErrorSpec(error_rate=0.1), random_state=0
    )
    return tiny_dataset.values, x_dirty, mask


class TestOracleDetector:
    def test_returns_stored_mask(self, dirty_problem):
        _, x_dirty, mask = dirty_problem
        detector = OracleDetector(mask)
        assert detector.detect(x_dirty) is mask


class TestStatisticalDetector:
    def test_flags_gross_outliers(self, rng):
        x = rng.normal(size=(100, 3))
        x[5, 1] = 50.0
        detected = StatisticalDetector(threshold=3.5).detect(x)
        assert not detected.observed[5, 1]

    def test_clean_data_mostly_unflagged(self, rng):
        x = rng.normal(size=(200, 3))
        detected = StatisticalDetector(threshold=6.0).detect(x)
        assert detected.observed.mean() > 0.99

    def test_constant_column_never_flagged(self, rng):
        x = np.column_stack([np.ones(50), rng.normal(size=50)])
        detected = StatisticalDetector().detect(x)
        assert detected.observed[:, 0].all()

    def test_invalid_threshold(self):
        with pytest.raises(ValidationError):
            StatisticalDetector(threshold=0.0)


class TestHoloCleanRepairer:
    def test_clean_cells_untouched(self, dirty_problem):
        _, x_dirty, mask = dirty_problem
        fixed = HoloCleanRepairer().repair(x_dirty, mask)
        assert np.allclose(fixed[mask.observed], x_dirty[mask.observed])

    def test_improves_over_dirty(self, dirty_problem):
        truth, x_dirty, mask = dirty_problem
        fixed = HoloCleanRepairer().repair(x_dirty, mask)
        assert rms_over_mask(fixed, truth, mask) < rms_over_mask(x_dirty, truth, mask)

    def test_no_dirty_cells_is_identity(self, rng):
        x = rng.random((10, 3))
        mask = ObservationMask.fully_observed(x.shape)
        fixed = HoloCleanRepairer().repair(x, mask)
        assert np.allclose(fixed, x)

    def test_repairs_within_column_range(self, dirty_problem):
        _, x_dirty, mask = dirty_problem
        fixed = HoloCleanRepairer().repair(x_dirty, mask)
        rows, cols = mask.unobserved_indices()
        for i, j in zip(rows, cols):
            col = x_dirty[mask.observed[:, j], j]
            assert col.min() - 1e-9 <= fixed[i, j] <= col.max() + 1e-9


class TestBaranRepairer:
    def test_clean_cells_untouched(self, dirty_problem):
        _, x_dirty, mask = dirty_problem
        fixed = BaranRepairer(random_state=0).repair(x_dirty, mask)
        assert np.allclose(fixed[mask.observed], x_dirty[mask.observed])

    def test_improves_over_dirty(self, dirty_problem):
        truth, x_dirty, mask = dirty_problem
        fixed = BaranRepairer(random_state=0).repair(x_dirty, mask)
        assert rms_over_mask(fixed, truth, mask) < rms_over_mask(x_dirty, truth, mask)

    def test_deterministic(self, dirty_problem):
        _, x_dirty, mask = dirty_problem
        a = BaranRepairer(random_state=5).repair(x_dirty, mask)
        b = BaranRepairer(random_state=5).repair(x_dirty, mask)
        assert np.allclose(a, b)

    def test_no_dirty_cells_is_identity(self, rng):
        x = rng.random((10, 3))
        mask = ObservationMask.fully_observed(x.shape)
        assert np.allclose(BaranRepairer().repair(x, mask), x)


class TestMFRepairer:
    def test_requires_fit_impute(self):
        with pytest.raises(TypeError, match="fit_impute"):
            MFRepairer(object())

    def test_smfl_repair_improves_substantially(self, dirty_problem):
        # The Table VI ordering (SMFL < HoloClean/Baran) is exercised at
        # experiment scale in the integration suite; here, on the tiny
        # fixture, assert a solid improvement over the dirty matrix.
        truth, x_dirty, mask = dirty_problem
        smfl = MFRepairer(SMFL(rank=4, n_spatial=2, random_state=0))
        fixed_mf = smfl.repair(x_dirty, mask)
        assert (
            rms_over_mask(fixed_mf, truth, mask)
            < 0.6 * rms_over_mask(x_dirty, truth, mask)
        )

    def test_dirty_values_not_seen_by_model(self, dirty_problem):
        # The repairer must zero dirty cells before fitting; verify the
        # output does not simply echo the dirty values.
        truth, x_dirty, mask = dirty_problem
        smfl = MFRepairer(SMFL(rank=4, n_spatial=2, random_state=0, max_iter=60))
        fixed = smfl.repair(x_dirty, mask)
        rows, cols = mask.unobserved_indices()
        echoed = np.isclose(fixed[rows, cols], x_dirty[rows, cols]).mean()
        assert echoed < 0.2
