"""FoldInServer: chunked batching, artifact loading, and telemetry.

The server is plumbing around :func:`repro.serving.fold_in` - the tests
pin that the plumbing is invisible (chunked answers equal one-shot
answers bit-for-bit), that a server boots straight from an artifact
path with verification, and that every request feeds the serving
counters and latency quantiles the benchmark reads back.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SMFL
from repro.exceptions import ValidationError
from repro.model import FittedModel, save_model
from repro.obs import MetricsRegistry
from repro.serving import FoldInServer, fold_in


@pytest.fixture(scope="module")
def model() -> FittedModel:
    rng = np.random.default_rng(0)
    spatial = rng.random((40, 2)) * 4.0
    attrs = np.abs(rng.normal(1.0, 0.3, size=(40, 5)))
    x = np.hstack([spatial, attrs])
    x[rng.random(x.shape) < 0.15] = np.nan
    x[:, :2] = spatial  # spatial coordinates stay observed
    solver = SMFL(rank=4, n_spatial=2, max_iter=60, random_state=0)
    return solver.fit(x).fitted_model()


def _requests(model, b, seed=1):
    rng = np.random.default_rng(seed)
    x = np.abs(rng.normal(1.0, 0.4, size=(b, model.n_cols)))
    holes = rng.random(x.shape) < 0.3
    holes[:, :2] = False
    x[holes] = np.nan
    return x


class TestChunking:
    def test_chunked_equals_one_shot(self, model):
        x = _requests(model, 10)
        server = FoldInServer(model, batch_size=4, metrics=MetricsRegistry())
        direct = fold_in(model, x)
        chunked = server.fold_in(x)
        np.testing.assert_array_equal(chunked.imputed, direct.imputed)
        np.testing.assert_array_equal(chunked.u_new, direct.u_new)
        assert chunked.n_rows == 10

    def test_single_row_convenience(self, model):
        server = FoldInServer(model, metrics=MetricsRegistry())
        row = _requests(model, 1)[0]
        out = server.impute_rows(row)
        assert out.shape == (model.n_cols,)
        np.testing.assert_array_equal(out, fold_in(model, row).imputed[0])


class TestArtifactBoot:
    def test_server_loads_from_path(self, model, tmp_path):
        base = str(tmp_path / "served")
        save_model(model, base)
        server = FoldInServer(base, metrics=MetricsRegistry())
        x = _requests(model, 3)
        np.testing.assert_array_equal(
            server.impute_rows(x), fold_in(model, x).imputed
        )


class TestTelemetry:
    def test_counters_and_stats(self, model):
        registry = MetricsRegistry()
        server = FoldInServer(model, batch_size=8, metrics=registry)
        server.impute_rows(_requests(model, 10))
        server.impute_rows(_requests(model, 6, seed=2))

        assert registry.counter("serving.requests").value == 2
        assert registry.counter("serving.imputations").value == 16
        stats = server.stats()
        assert stats["requests"] == 2
        assert stats["rows"] == 16
        assert stats["imputations_per_second"] > 0
        assert stats["latency_p50_seconds"] > 0
        assert stats["latency_p99_seconds"] >= stats["latency_p50_seconds"]

    def test_latency_histograms_fed_per_request(self, model):
        registry = MetricsRegistry()
        server = FoldInServer(model, metrics=registry)
        for seed in range(5):
            server.impute_rows(_requests(model, 2, seed=seed))
        assert registry.quantile_histogram("serving.request_seconds").count == 5
        assert registry.quantile_histogram("serving.row_seconds").count == 5


class TestValidation:
    def test_estimate_model_rejected(self):
        estimate_model = FittedModel.from_estimate(
            method="mean",
            estimate=np.ones((3, 4)),
            x_observed=np.ones((3, 4)),
            observed=np.ones((3, 4), dtype=bool),
        )
        with pytest.raises(ValidationError):
            FoldInServer(estimate_model, metrics=MetricsRegistry())

    def test_bad_batch_size_rejected(self, model):
        with pytest.raises(ValidationError):
            FoldInServer(model, batch_size=0, metrics=MetricsRegistry())
