"""FoldInServer live telemetry: events, sampling, exemplars, error paths.

The server's contract with the observability layer: every request
emits paired start/done events carrying one request id; errors are
*never* sampled away and always leave an ``error``-level event (and a
clean in-flight gauge) behind; the sampling decision gates only the
success-path span and the histogram exemplar.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SMFL
from repro.exceptions import ValidationError
from repro.model import FittedModel
from repro.obs import MetricsRegistry
from repro.obs.live import EventLog, RingBufferSink, Sampler, use_event_log
from repro.obs.trace import collecting_tracer, use_tracer
from repro.serving import FoldInServer


@pytest.fixture(scope="module")
def model() -> FittedModel:
    rng = np.random.default_rng(0)
    spatial = rng.random((40, 2)) * 4.0
    attrs = np.abs(rng.normal(1.0, 0.3, size=(40, 5)))
    x = np.hstack([spatial, attrs])
    x[rng.random(x.shape) < 0.15] = np.nan
    x[:, :2] = spatial  # spatial coordinates stay observed
    solver = SMFL(rank=4, n_spatial=2, max_iter=60, random_state=0)
    return solver.fit(x).fitted_model()


def _requests(model, b, seed=1):
    rng = np.random.default_rng(seed)
    x = np.abs(rng.normal(1.0, 0.4, size=(b, model.n_cols)))
    holes = rng.random(x.shape) < 0.3
    holes[:, :2] = False
    x[holes] = np.nan
    return x


def _span_names(tracer):
    return [
        event["name"]
        for event in tracer.sink.events
        if event.get("type") == "span"
    ]


class TestRequestEvents:
    def test_paired_start_done_records(self, model):
        server = FoldInServer(model, metrics=MetricsRegistry())
        sink = RingBufferSink()
        with use_event_log(EventLog(sink)):
            server.fold_in(_requests(model, 5))
        start, done = sink.tail()
        assert start["event"] == "serving.request_start"
        assert done["event"] == "serving.request_done"
        assert start["attrs"]["rows"] == 5
        assert done["attrs"]["rows"] == 5
        assert done["attrs"]["seconds"] > 0
        # One id ties the pair together; without a sampler every
        # request counts as sampled.
        assert start["attrs"]["request_id"] == done["attrs"]["request_id"]
        assert start["attrs"]["request_id"].startswith("req-")
        assert start["attrs"]["sampled"] is True

    def test_no_events_without_an_event_log(self, model):
        # The ambient default is the null log: nothing recorded,
        # nothing raised.
        server = FoldInServer(model, metrics=MetricsRegistry())
        result = server.fold_in(_requests(model, 3))
        assert result.n_rows == 3


class TestErrorPath:
    def test_error_event_emitted_and_reraised(self, model):
        registry = MetricsRegistry()
        server = FoldInServer(model, metrics=registry)
        sink = RingBufferSink()
        bad = _requests(model, 3)[:, :-1]  # wrong column count
        with use_event_log(EventLog(sink)):
            with pytest.raises(ValidationError):
                server.fold_in(bad)
        names = [record["event"] for record in sink.tail()]
        assert names == ["serving.request_start", "serving.request_error"]
        error = sink.tail()[-1]
        assert error["level"] == "error"
        assert error["attrs"]["error"] == "ValidationError"
        assert error["attrs"]["detail"]
        assert registry.counter("serving.errors").value == 1
        assert registry.gauge("serving.in_flight").value == 0

    def test_errors_are_never_sampled_away(self, model):
        # Sampler rate 0 drops every success-path trace, but the error
        # event still lands - a failing request must not be invisible.
        server = FoldInServer(
            model, metrics=MetricsRegistry(), sampler=Sampler(0.0)
        )
        sink = RingBufferSink()
        bad = _requests(model, 3)[:, :-1]
        with use_event_log(EventLog(sink)):
            with pytest.raises(ValidationError):
                server.fold_in(bad)
        names = [record["event"] for record in sink.tail()]
        assert "serving.request_error" in names


class TestSampling:
    def test_rate_one_traces_every_request(self, model):
        server = FoldInServer(
            model, metrics=MetricsRegistry(), sampler=Sampler(1.0)
        )
        tracer = collecting_tracer()
        with use_tracer(tracer):
            for seed in range(4):
                server.fold_in(_requests(model, 3, seed=seed))
        assert _span_names(tracer).count("serving.fold_in") == 4
        assert server.sampler.stats()["decisions"] == 4

    def test_rate_zero_traces_nothing_but_serves_everything(self, model):
        registry = MetricsRegistry()
        server = FoldInServer(model, metrics=registry, sampler=Sampler(0.0))
        tracer = collecting_tracer()
        with use_tracer(tracer):
            for seed in range(4):
                server.fold_in(_requests(model, 3, seed=seed))
        assert _span_names(tracer).count("serving.fold_in") == 0
        # The metrics are not sampled: every request still counts.
        assert registry.counter("serving.requests").value == 4
        assert registry.quantile_histogram("serving.request_seconds").count == 4

    def test_fractional_rate_traces_a_subset(self, model):
        server = FoldInServer(
            model, metrics=MetricsRegistry(), sampler=Sampler(0.5, seed=3)
        )
        tracer = collecting_tracer()
        with use_tracer(tracer):
            for seed in range(12):
                server.fold_in(_requests(model, 2, seed=seed))
        traced = _span_names(tracer).count("serving.fold_in")
        assert 0 < traced < 12
        assert traced == server.sampler.stats()["sampled"]

    def test_events_mark_the_sampling_decision(self, model):
        server = FoldInServer(
            model, metrics=MetricsRegistry(), sampler=Sampler(0.0)
        )
        sink = RingBufferSink()
        with use_event_log(EventLog(sink)):
            server.fold_in(_requests(model, 2))
        start = sink.tail()[0]
        assert start["attrs"]["sampled"] is False
        # The request id still exists (the event log will show it) -
        # only the span and exemplar are gated.
        assert start["attrs"]["request_id"].startswith("req-")


class TestExemplars:
    def test_sampled_requests_leave_exemplar_request_ids(self, model):
        registry = MetricsRegistry()
        server = FoldInServer(model, metrics=registry, sampler=Sampler(1.0))
        for seed in range(3):
            server.fold_in(_requests(model, 2, seed=seed))
        snapshot = registry.quantile_histogram(
            "serving.request_seconds"
        ).snapshot()
        assert "exemplars" in snapshot
        assert all(
            exemplar.startswith("req-")
            for exemplar in snapshot["exemplars"].values()
        )

    def test_unsampled_requests_leave_no_exemplars(self, model):
        registry = MetricsRegistry()
        server = FoldInServer(model, metrics=registry, sampler=Sampler(0.0))
        for seed in range(3):
            server.fold_in(_requests(model, 2, seed=seed))
        snapshot = registry.quantile_histogram(
            "serving.request_seconds"
        ).snapshot()
        assert snapshot["count"] == 3
        assert "exemplars" not in snapshot
