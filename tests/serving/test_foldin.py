"""Fold-in math: the batched ridge solve against the frozen ``V``.

Contracts: observed cells come back verbatim; the batched path equals
the per-row loop to machine precision (with and without the shared
observation pattern fast path); embeddings respect the nonnegativity
projection; the zero-observed row folds to the zero embedding; the
spatial-neighbour prior activates only for spatial models and closes
the held-out gap the plain solve leaves open.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SMFL, MaskedNMF
from repro.engine.workspace import BufferArena
from repro.exceptions import ValidationError
from repro.model import FittedModel
from repro.serving import (
    DEFAULT_SMOOTHING,
    fold_in,
    fold_in_row,
)


def _fit_model(n: int = 40, m: int = 7, seed: int = 0) -> FittedModel:
    rng = np.random.default_rng(seed)
    spatial = rng.random((n, 2)) * 4.0
    attrs = np.abs(
        np.sin(spatial.sum(axis=1, keepdims=True) + np.arange(m - 2)) + 1.2
    ) + 0.1 * rng.random((n, m - 2))
    x = np.hstack([spatial, attrs])
    x_missing = x.copy()
    holes = rng.random((n, m)) < 0.2
    holes[:, :2] = False
    x_missing[holes] = np.nan
    solver = SMFL(rank=4, n_spatial=2, max_iter=80, random_state=seed)
    return solver.fit(x_missing).fitted_model()


@pytest.fixture(scope="module")
def model() -> FittedModel:
    return _fit_model()


def _requests(model: FittedModel, b: int = 9, seed: int = 3):
    rng = np.random.default_rng(seed)
    m = model.n_cols
    x = np.abs(rng.normal(1.0, 0.5, size=(b, m)))
    holes = rng.random((b, m)) < 0.3
    holes[:, :2] = False
    x[holes] = np.nan
    return x


class TestFoldIn:
    def test_observed_cells_verbatim(self, model):
        x = _requests(model)
        result = fold_in(model, x)
        observed = ~np.isnan(x)
        assert np.array_equal(result.imputed[observed], x[observed])
        assert np.isfinite(result.imputed).all()

    def test_batched_equals_per_row_loop(self, model):
        x = _requests(model)
        batched = fold_in(model, x)
        for i in range(x.shape[0]):
            u_row, imputed_row = fold_in_row(model, x[i])
            np.testing.assert_allclose(batched.u_new[i], u_row, atol=1e-12)
            np.testing.assert_allclose(batched.imputed[i], imputed_row, atol=1e-12)

    def test_shared_pattern_fast_path_matches_loop(self, model):
        rng = np.random.default_rng(5)
        x = np.abs(rng.normal(1.0, 0.5, size=(6, model.n_cols)))
        x[:, 3] = np.nan  # every row drops the same column
        result = fold_in(model, x)
        assert result.shared_pattern
        for i in range(x.shape[0]):
            _, imputed_row = fold_in_row(model, x[i])
            np.testing.assert_allclose(result.imputed[i], imputed_row, atol=1e-12)

    def test_nonnegative_projection(self, model):
        result = fold_in(model, _requests(model))
        assert result.nonnegative
        assert (result.u_new >= 0.0).all()

    def test_zero_observed_row_folds_to_zero_embedding(self, model):
        x = np.full((1, model.n_cols), np.nan)
        result = fold_in(model, x)
        assert np.array_equal(result.u_new, np.zeros((1, model.rank)))
        assert np.isfinite(result.imputed).all()

    def test_imputed_respects_clip_bounds(self, model):
        result = fold_in(model, _requests(model))
        lows, highs = model.clip_bounds()
        filled = result.imputed[~result.observed]
        columns = np.nonzero(~result.observed)[1]
        assert (filled >= lows[columns] - 1e-12).all()
        assert (filled <= highs[columns] + 1e-12).all()

    def test_arena_reuse_is_equivalent(self, model):
        x = _requests(model)
        arena = BufferArena()
        first = fold_in(model, x, arena=arena)
        second = fold_in(model, x, arena=arena)
        np.testing.assert_array_equal(first.imputed, second.imputed)
        np.testing.assert_array_equal(first.imputed, fold_in(model, x).imputed)


class TestSpatialPrior:
    def test_default_smoothing_for_spatial_models(self, model):
        result = fold_in(model, _requests(model))
        assert result.spatial_smoothing == DEFAULT_SMOOTHING

    def test_zero_forces_plain_ridge_solve(self, model):
        result = fold_in(model, _requests(model), spatial_smoothing=0.0)
        assert result.spatial_smoothing == 0.0

    def test_nonspatial_model_never_uses_prior(self):
        rng = np.random.default_rng(2)
        x = np.abs(rng.normal(1.0, 0.4, size=(20, 5)))
        solver = MaskedNMF(rank=3, max_iter=40, random_state=0)
        nmf_model = solver.fit(x).fitted_model()
        result = fold_in(nmf_model, np.abs(rng.normal(1.0, 0.4, size=(4, 5))))
        assert result.spatial_smoothing == 0.0

    def test_prior_closes_heldout_gap(self):
        # Fold in *held-out* rows of the training distribution: the
        # prior-regularized solve must beat the plain ridge solve on the
        # unobserved cells (the serving benchmark's acceptance story).
        rng = np.random.default_rng(11)
        n, m = 60, 7
        spatial = rng.random((n, 2)) * 4.0
        attrs = np.abs(
            np.sin(spatial.sum(axis=1, keepdims=True) + np.arange(m - 2)) + 1.2
        )
        x = np.hstack([spatial, attrs])
        x_missing = x.copy()
        holes = rng.random((n, m)) < 0.2
        holes[:, :2] = False
        x_missing[holes] = np.nan
        solver = SMFL(rank=4, n_spatial=2, max_iter=80, random_state=1)
        fitted = solver.fit(x_missing[:45]).fitted_model()

        held = x_missing[45:]
        truth = x[45:]
        unobserved = np.isnan(held)
        with_prior = fold_in(fitted, held).imputed
        without = fold_in(fitted, held, spatial_smoothing=0.0).imputed
        rms_prior = np.sqrt(np.mean((with_prior[unobserved] - truth[unobserved]) ** 2))
        rms_plain = np.sqrt(np.mean((without[unobserved] - truth[unobserved]) ** 2))
        assert rms_prior < rms_plain

    def test_negative_smoothing_rejected(self, model):
        with pytest.raises(ValidationError):
            fold_in(model, _requests(model), spatial_smoothing=-0.1)


class TestValidation:
    def test_estimate_model_rejected(self):
        estimate_model = FittedModel.from_estimate(
            method="mean",
            estimate=np.ones((3, 4)),
            x_observed=np.ones((3, 4)),
            observed=np.ones((3, 4), dtype=bool),
        )
        with pytest.raises(ValidationError):
            fold_in(estimate_model, np.ones(4))

    def test_column_count_mismatch_rejected(self, model):
        with pytest.raises(ValidationError):
            fold_in(model, np.ones(model.n_cols + 1))

    def test_nonpositive_ridge_rejected(self, model):
        with pytest.raises(ValidationError):
            fold_in(model, np.ones(model.n_cols), ridge=0.0)

    def test_fold_in_row_rejects_batches(self, model):
        with pytest.raises(ValidationError):
            fold_in_row(model, np.ones((2, model.n_cols)))

    def test_model_fold_in_wrapper(self, model):
        x = _requests(model, b=3)
        np.testing.assert_array_equal(
            model.fold_in(x), fold_in(model, x).imputed
        )
