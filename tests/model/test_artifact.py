"""Artifact round-trips: save -> load -> verify must be bit-exact.

Hypothesis drives randomized factor shapes, landmark blocks, and
non-finite clip bounds through the save/load/verify cycle; the
contract is bit identity of every array, metadata equality, a stable
content hash (re-saving an identical model reproduces it), and loud
failure on real content mutation - while trailing file junk that does
not change the arrays is *not* corruption (verification is
content-based, not byte-based).
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.model import (
    FittedModel,
    load_model,
    save_model,
    verify_model,
)
from repro.versioning import ARTIFACT_SCHEMA_VERSION
from repro.model.__main__ import main as model_cli

ROUND_TRIP_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
)

model_draw = st.fixed_dictionaries(
    {
        "n": st.integers(min_value=2, max_value=12),
        "m": st.integers(min_value=2, max_value=9),
        "k": st.integers(min_value=1, max_value=5),
        "n_landmarks": st.integers(min_value=0, max_value=2),
        "seed": st.integers(min_value=0, max_value=2**31 - 1),
        "clip": st.booleans(),
    }
)


def _random_model(draw: dict) -> FittedModel:
    rng = np.random.default_rng(draw["seed"])
    n, m, k = draw["n"], draw["m"], draw["k"]
    n_landmarks = min(draw["n_landmarks"], m)
    u = np.abs(rng.normal(size=(n, k)))
    v = np.abs(rng.normal(size=(k, m)))
    x = np.abs(rng.normal(size=(n, m)))
    observed = rng.random((n, m)) < 0.7
    observed[0, 0] = True  # at least one observed cell
    return FittedModel.from_factors(
        method="smfl" if n_landmarks else "nmf",
        u=u,
        v=v,
        x_observed=np.where(observed, x, 0.0),
        observed=observed,
        update_rule="multiplicative",
        kernel_path="fused",
        n_spatial=n_landmarks,
        landmark_values=v[:, :n_landmarks] if n_landmarks else None,
        clip_to_observed=draw["clip"],
    )


class TestRoundTripProperty:
    @ROUND_TRIP_SETTINGS
    @given(draw=model_draw)
    def test_save_load_verify_bit_identity(self, draw, tmp_path_factory):
        model = _random_model(draw)
        base = str(tmp_path_factory.mktemp("artifact") / "model")
        info = save_model(model, base)

        report = verify_model(base)
        assert report["ok"], report["errors"]
        assert report["content_hash"] == info["content_hash"]
        assert report["schema"] == ARTIFACT_SCHEMA_VERSION

        loaded = load_model(base)
        for name in ("u", "v", "estimate", "landmark_values",
                     "column_low", "column_high"):
            original = getattr(model, name)
            restored = getattr(loaded, name)
            if original is None:
                assert restored is None
            else:
                # Bit identity, including any +/-inf clip bounds.
                assert original.dtype == restored.dtype
                assert np.array_equal(original, restored, equal_nan=True)
        assert loaded.method == model.method
        assert loaded.rank == model.rank
        assert loaded.landmark_columns == model.landmark_columns
        assert loaded.clip_to_observed == model.clip_to_observed
        assert loaded.observed_fraction == model.observed_fraction
        assert (loaded.n_rows, loaded.n_cols) == (model.n_rows, model.n_cols)

    @ROUND_TRIP_SETTINGS
    @given(draw=model_draw)
    def test_resave_reproduces_content_hash(self, draw, tmp_path_factory):
        model = _random_model(draw)
        root = tmp_path_factory.mktemp("rehash")
        first = save_model(model, str(root / "a"))
        second = save_model(load_model(str(root / "a")), str(root / "b"))
        assert first["content_hash"] == second["content_hash"]


@pytest.fixture
def saved(tmp_path):
    model = _random_model(
        {"n": 6, "m": 5, "k": 3, "n_landmarks": 2, "seed": 7, "clip": True}
    )
    base = str(tmp_path / "model")
    info = save_model(model, base)
    return model, base, info


class TestTamper:
    def test_metadata_mutation_fails_verify_and_load(self, saved):
        _, base, info = saved
        document = json.loads(open(info["json_path"]).read())
        document["metadata"]["rank"] = 99
        with open(info["json_path"], "w") as fh:
            json.dump(document, fh)
        report = verify_model(base)
        assert not report["ok"]
        assert any("content hash" in error for error in report["errors"])
        with pytest.raises(ValidationError):
            load_model(base)
        # Verification is opt-out for forensics.
        assert load_model(base, verify=False).rank == 99

    def test_array_mutation_fails(self, saved):
        model, base, info = saved
        arrays = dict(np.load(info["npz_path"]))
        arrays["u"] = arrays["u"] + 1.0
        np.savez(info["npz_path"], **arrays)
        report = verify_model(base)
        assert not report["ok"]
        assert any("digest mismatch" in error for error in report["errors"])

    def test_trailing_junk_is_not_corruption(self, saved):
        # Content-based verification: appending bytes the npz reader
        # ignores does not change any array, so the artifact is intact.
        _, base, info = saved
        with open(info["npz_path"], "ab") as fh:
            fh.write(b"\0" * 16)
        assert verify_model(base)["ok"]


class TestCli:
    def test_verify_and_info_round_trip(self, saved, capsys):
        _, base, _ = saved
        assert model_cli(["verify", base, "--check"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is True
        assert model_cli(["info", base]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["method"] == "smfl"

    def test_verify_check_fails_on_tamper(self, saved):
        _, base, info = saved
        document = json.loads(open(info["json_path"]).read())
        document["metadata"]["method"] = "other"
        with open(info["json_path"], "w") as fh:
            json.dump(document, fh)
        assert model_cli(["verify", base, "--check"]) == 1
