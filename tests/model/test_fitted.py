"""FittedModel extraction: the refactor must not move a single bit.

The tentpole contract: ``solver.impute()`` (legacy, stateful) and
``impute_matrix(model, x, mask)`` (pure function of the extracted
state) produce **bit-identical** output, for every solver family and
for the estimate-flavour baselines; impute-before-fit raises
:class:`NotFittedError` (not ``AttributeError``); and SMFL's frozen
landmark block travels into the model's metadata.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.registry import make_imputer
from repro.core import SMF, SMFL, MaskedNMF
from repro.exceptions import NotFittedError, ValidationError
from repro.model import (
    FittedModel,
    coerce_observations,
    impute_matrix,
    observed_column_bounds,
)


def _problem(seed: int = 0, n: int = 24, m: int = 7, missing: float = 0.25):
    rng = np.random.default_rng(seed)
    x = np.abs(rng.normal(1.0, 0.5, size=(n, m)))
    x_missing = x.copy()
    holes = rng.random((n, m)) < missing
    holes[:, :2] = False  # keep spatial columns observed
    x_missing[holes] = np.nan
    return x_missing


SOLVERS = {
    "nmf": lambda: MaskedNMF(rank=3, max_iter=40, random_state=0),
    "smf": lambda: SMF(rank=3, n_spatial=2, max_iter=40, random_state=0),
    "smfl": lambda: SMFL(rank=4, n_spatial=2, max_iter=40, random_state=0),
}


class TestSolverExtraction:
    @pytest.mark.parametrize("name", sorted(SOLVERS))
    def test_impute_is_bit_identical_to_pure_function(self, name):
        x_missing = _problem()
        solver = SOLVERS[name]().fit(x_missing)
        legacy = solver.impute()
        model = solver.fitted_model()
        assert np.array_equal(legacy, impute_matrix(model, x_missing))
        assert np.array_equal(legacy, model.impute(x_missing))

    @pytest.mark.parametrize("name", sorted(SOLVERS))
    def test_fit_attaches_factor_model(self, name):
        solver = SOLVERS[name]().fit(_problem())
        model = solver.fitted_model_
        assert isinstance(model, FittedModel)
        assert model.is_factor_model
        assert model.method == solver.method
        assert np.array_equal(model.u, solver.u_)
        assert np.array_equal(model.v, solver.v_)

    def test_smfl_landmark_metadata(self):
        solver = SOLVERS["smfl"]().fit(_problem())
        model = solver.fitted_model_
        n_landmarks = solver.landmarks_.values.shape[1]
        assert model.landmark_columns == tuple(range(n_landmarks))
        assert np.array_equal(
            model.landmark_values, solver.v_[:, :n_landmarks]
        )

    def test_non_landmark_solvers_carry_no_landmarks(self):
        model = SOLVERS["smf"]().fit(_problem()).fitted_model_
        assert model.landmark_columns == ()
        assert model.landmark_values is None


class TestNotFitted:
    @pytest.mark.parametrize("name", sorted(SOLVERS))
    def test_solver_impute_before_fit(self, name):
        with pytest.raises(NotFittedError):
            SOLVERS[name]().impute()
        with pytest.raises(NotFittedError):
            SOLVERS[name]().fitted_model()

    def test_baseline_fitted_model_before_fit(self):
        with pytest.raises(NotFittedError):
            make_imputer("mean").fitted_model()


class TestBaselineSeam:
    @pytest.mark.parametrize("name", ["mean", "knn", "softimpute"])
    def test_fit_impute_attaches_estimate_model(self, name):
        x_missing = _problem()
        imputer = make_imputer(name, random_state=0)
        x_hat = imputer.fit_impute(x_missing)
        model = imputer.fitted_model()
        assert not model.is_factor_model
        assert model.method == imputer.name
        # The pure function re-derives exactly what fit_impute returned.
        assert np.array_equal(x_hat, impute_matrix(model, x_missing))

    def test_fully_observed_early_return_still_attaches(self):
        x = np.abs(np.random.default_rng(1).normal(size=(6, 4))) + 0.5
        imputer = make_imputer("mean")
        out = imputer.fit_impute(x)
        assert np.array_equal(out, x)
        assert imputer.fitted_model() is not None


class TestValueObject:
    def test_needs_factors_or_estimate(self):
        with pytest.raises(ValidationError):
            FittedModel(method="empty")
        with pytest.raises(ValidationError):
            FittedModel(method="half", u=np.ones((2, 2)))

    def test_arrays_are_read_only(self):
        model = FittedModel(
            method="nmf", u=np.ones((3, 2)), v=np.ones((2, 4)), rank=2
        )
        with pytest.raises(ValueError):
            model.u[0, 0] = 7.0


class TestObservedColumnBounds:
    def test_unobserved_column_gets_infinite_bounds(self):
        x = np.array([[1.0, 0.0], [3.0, 0.0]])
        observed = np.array([[True, False], [True, False]])
        lows, highs = observed_column_bounds(x, observed)
        assert lows[0] == 1.0 and highs[0] == 3.0
        assert lows[1] == -np.inf and highs[1] == np.inf


class TestCoerceObservations:
    def test_nan_detection_zero_fills(self):
        x = np.array([[1.0, np.nan], [2.0, 3.0]])
        filled, observation = coerce_observations(x, None)
        assert filled[0, 1] == 0.0
        assert observation.observed[0, 1] == np.False_

    def test_mask_override_and_nan_at_observed_rejected(self):
        x = np.array([[1.0, np.nan]])
        filled, _ = coerce_observations(x, np.array([[True, False]]))
        assert filled[0, 1] == 0.0
        with pytest.raises(ValidationError):
            coerce_observations(x, np.array([[False, True]]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            coerce_observations(np.ones((2, 2)), np.ones((3, 2), dtype=bool))
