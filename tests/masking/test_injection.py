"""Unit tests for the Section IV-A1 error-injection protocols."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DegenerateDataError, ValidationError
from repro.masking import ErrorSpec, MissingSpec, inject_errors, inject_missing


@pytest.fixture
def base_matrix(rng) -> np.ndarray:
    return rng.random((50, 6))


class TestMissingSpec:
    def test_rejects_zero_rate(self):
        with pytest.raises(ValidationError):
            MissingSpec(missing_rate=0.0)

    def test_rejects_full_rate(self):
        with pytest.raises(ValidationError):
            MissingSpec(missing_rate=1.0)


class TestInjectMissing:
    def test_rate_respected(self, base_matrix):
        spec = MissingSpec(missing_rate=0.2, columns=(2, 3, 4, 5))
        _, mask = inject_missing(base_matrix, spec, random_state=0)
        eligible = 50 * 4
        injected = mask.n_unobserved
        assert abs(injected - 0.2 * eligible) <= max(4, 0.05 * eligible)

    def test_only_target_columns_touched(self, base_matrix):
        spec = MissingSpec(missing_rate=0.3, columns=(3,))
        _, mask = inject_missing(base_matrix, spec, random_state=0)
        untouched = np.delete(mask.observed, 3, axis=1)
        assert untouched.all()

    def test_injected_cells_zeroed(self, base_matrix):
        spec = MissingSpec(missing_rate=0.2, columns=(2, 3))
        x_missing, mask = inject_missing(base_matrix, spec, random_state=0)
        rows, cols = mask.unobserved_indices()
        assert (x_missing[rows, cols] == 0.0).all()
        # Observed cells unchanged.
        assert np.allclose(
            np.where(mask.observed, x_missing, 0),
            np.where(mask.observed, base_matrix, 0),
        )

    def test_protected_rows_untouched(self, base_matrix):
        protect = (0, 1, 2, 3, 4)
        spec = MissingSpec(missing_rate=0.4, columns=(2, 3), protect_rows=protect)
        _, mask = inject_missing(base_matrix, spec, random_state=1)
        assert mask.observed[list(protect)].all()

    def test_every_column_keeps_an_observed_cell(self, rng):
        x = rng.random((10, 3))
        spec = MissingSpec(missing_rate=0.95)
        _, mask = inject_missing(x, spec, random_state=0)
        assert mask.observed.any(axis=0).all()

    def test_deterministic(self, base_matrix):
        spec = MissingSpec(missing_rate=0.2, columns=(2, 3))
        _, m1 = inject_missing(base_matrix, spec, random_state=42)
        _, m2 = inject_missing(base_matrix, spec, random_state=42)
        assert np.array_equal(m1.observed, m2.observed)

    def test_out_of_range_columns(self, base_matrix):
        spec = MissingSpec(missing_rate=0.2, columns=(99,))
        with pytest.raises(DegenerateDataError, match="out of range"):
            inject_missing(base_matrix, spec, random_state=0)

    def test_all_rows_protected(self, rng):
        x = rng.random((3, 3))
        spec = MissingSpec(missing_rate=0.5, protect_rows=(0, 1, 2))
        with pytest.raises(DegenerateDataError, match="protected"):
            inject_missing(x, spec, random_state=0)

    def test_tiny_rate_rounds_to_zero(self, rng):
        x = rng.random((4, 3))
        spec = MissingSpec(missing_rate=0.01)
        _, mask = inject_missing(x, spec, random_state=0)
        assert mask.n_unobserved == 0

    def test_input_not_mutated(self, base_matrix):
        original = base_matrix.copy()
        inject_missing(base_matrix, MissingSpec(missing_rate=0.3), random_state=0)
        assert np.array_equal(base_matrix, original)


class TestInjectErrors:
    def test_corrupted_values_stay_in_domain(self, base_matrix):
        spec = ErrorSpec(error_rate=0.2)
        x_dirty, mask = inject_errors(base_matrix, spec, random_state=0)
        rows, cols = mask.unobserved_indices()
        for i, j in zip(rows, cols):
            assert x_dirty[i, j] in base_matrix[:, j]

    def test_corrupted_values_differ(self, base_matrix):
        spec = ErrorSpec(error_rate=0.2)
        x_dirty, mask = inject_errors(base_matrix, spec, random_state=0)
        rows, cols = mask.unobserved_indices()
        changed = sum(
            x_dirty[i, j] != base_matrix[i, j] for i, j in zip(rows, cols)
        )
        # All continuous values are distinct, so every injected cell changes.
        assert changed == len(rows)

    def test_constant_column_stays_constant(self, rng):
        x = np.column_stack([np.ones(20), rng.random(20)])
        x_dirty, mask = inject_errors(x, ErrorSpec(error_rate=0.3), random_state=0)
        assert (x_dirty[:, 0] == 1.0).all()

    def test_clean_cells_unchanged(self, base_matrix):
        x_dirty, mask = inject_errors(
            base_matrix, ErrorSpec(error_rate=0.15), random_state=3
        )
        assert np.allclose(
            np.where(mask.observed, x_dirty, 0),
            np.where(mask.observed, base_matrix, 0),
        )

    def test_deterministic(self, base_matrix):
        a, m1 = inject_errors(base_matrix, ErrorSpec(error_rate=0.1), random_state=9)
        b, m2 = inject_errors(base_matrix, ErrorSpec(error_rate=0.1), random_state=9)
        assert np.array_equal(a, b)
        assert np.array_equal(m1.observed, m2.observed)


class TestMNARInjection:
    def _inject(self, matrix, **kwargs):
        from repro.masking import MNARSpec, inject_missing_mnar

        defaults = dict(missing_rate=0.3, strength=4.0)
        defaults.update(kwargs)
        return inject_missing_mnar(
            matrix, MNARSpec(**defaults), random_state=0
        )

    def test_rate_and_zeroing(self, base_matrix):
        corrupted, mask = self._inject(base_matrix)
        removed = base_matrix.size - mask.observed.sum()
        assert removed == int(round(base_matrix.size * 0.3))
        assert np.all(corrupted[~mask.observed] == 0.0)
        np.testing.assert_array_equal(
            corrupted[mask.observed], base_matrix[mask.observed]
        )

    def test_bias_prefers_large_values(self, base_matrix):
        _, mask = self._inject(base_matrix, strength=6.0)
        assert base_matrix[~mask.observed].mean() > base_matrix[mask.observed].mean()

    def test_zero_strength_is_unbiased_sampling(self, base_matrix):
        # strength=0 collapses the weights to uniform - MCAR by another name.
        _, mask = self._inject(base_matrix, strength=0.0)
        removed_mean = base_matrix[~mask.observed].mean()
        kept_mean = base_matrix[mask.observed].mean()
        assert abs(removed_mean - kept_mean) < 0.15

    def test_deterministic(self, base_matrix):
        _, first = self._inject(base_matrix)
        _, second = self._inject(base_matrix)
        np.testing.assert_array_equal(first.observed, second.observed)

    def test_input_not_mutated(self, base_matrix):
        snapshot = base_matrix.copy()
        self._inject(base_matrix)
        np.testing.assert_array_equal(base_matrix, snapshot)

    def test_negative_strength_rejected(self):
        from repro.masking import MNARSpec

        with pytest.raises(ValidationError):
            MNARSpec(missing_rate=0.3, strength=-1.0)

    def test_column_restriction(self, base_matrix):
        _, mask = self._inject(base_matrix, columns=[2, 3])
        untouched = np.delete(mask.observed, [2, 3], axis=1)
        assert untouched.all()
