"""Unit + property tests for ObservationMask (R_Omega, Formula 8)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.masking import ObservationMask, mask_from_missing_values


@pytest.fixture
def mask_3x2() -> ObservationMask:
    return ObservationMask(np.array([[True, False], [True, True], [False, False]]))


class TestObservationMaskBasics:
    def test_counts(self, mask_3x2):
        assert mask_3x2.n_observed == 3
        assert mask_3x2.n_unobserved == 3
        assert mask_3x2.observed_fraction == pytest.approx(0.5)

    def test_indices_partition_cells(self, mask_3x2):
        obs = set(zip(*mask_3x2.indices()))
        unobs = set(zip(*mask_3x2.unobserved_indices()))
        assert obs | unobs == {(i, j) for i in range(3) for j in range(2)}
        assert obs & unobs == set()

    def test_immutable(self, mask_3x2):
        with pytest.raises(ValueError):
            mask_3x2.observed[0, 0] = False

    def test_rejects_1d(self):
        with pytest.raises(ValidationError):
            ObservationMask(np.array([True, False]))

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            ObservationMask(np.zeros((0, 2), dtype=bool))

    def test_fully_observed_constructor(self):
        mask = ObservationMask.fully_observed((2, 3))
        assert mask.n_unobserved == 0

    def test_with_observed_rows(self, mask_3x2):
        assert mask_3x2.with_observed_rows().tolist() == [False, True, False]


class TestProjection:
    def test_project_zeroes_unobserved(self, mask_3x2):
        x = np.arange(6, dtype=float).reshape(3, 2) + 1.0
        out = mask_3x2.project(x)
        assert out.tolist() == [[1.0, 0.0], [3.0, 4.0], [0.0, 0.0]]

    def test_project_complement(self, mask_3x2):
        x = np.arange(6, dtype=float).reshape(3, 2) + 1.0
        out = mask_3x2.project_complement(x)
        assert out.tolist() == [[0.0, 2.0], [0.0, 0.0], [5.0, 6.0]]

    def test_projection_is_idempotent(self, mask_3x2, rng):
        x = rng.random((3, 2))
        once = mask_3x2.project(x)
        assert np.allclose(mask_3x2.project(once), once)

    def test_projections_sum_to_identity(self, mask_3x2, rng):
        x = rng.random((3, 2))
        assert np.allclose(
            mask_3x2.project(x) + mask_3x2.project_complement(x), x
        )

    def test_project_handles_nan_at_unobserved(self, mask_3x2):
        x = np.array([[1.0, np.nan], [1.0, 1.0], [np.nan, np.nan]])
        out = mask_3x2.project(x)
        assert np.isfinite(out).all()

    def test_shape_mismatch(self, mask_3x2):
        with pytest.raises(ValidationError, match="does not match"):
            mask_3x2.project(np.zeros((2, 2)))

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_property_linearity(self, seed):
        rng = np.random.default_rng(seed)
        mask = ObservationMask(rng.random((4, 4)) > 0.5)
        a, b = rng.random((4, 4)), rng.random((4, 4))
        assert np.allclose(
            mask.project(a + b), mask.project(a) + mask.project(b)
        )


class TestMerge:
    def test_formula_8(self, mask_3x2):
        x = np.full((3, 2), 1.0)
        x_star = np.full((3, 2), 9.0)
        out = mask_3x2.merge(x, x_star)
        assert out.tolist() == [[1.0, 9.0], [1.0, 1.0], [9.0, 9.0]]

    def test_merge_rejects_nan_result(self, mask_3x2):
        x = np.full((3, 2), 1.0)
        x_star = np.full((3, 2), np.nan)
        with pytest.raises(ValidationError, match="NaN"):
            mask_3x2.merge(x, x_star)

    def test_merge_allows_nan_in_ignored_cells(self, mask_3x2):
        x = np.array([[1.0, np.nan], [1.0, 1.0], [np.nan, np.nan]])
        x_star = np.full((3, 2), 9.0)
        out = mask_3x2.merge(x, x_star)
        assert np.isfinite(out).all()


class TestIntersect:
    def test_and_semantics(self):
        a = ObservationMask(np.array([[True, True], [False, True]]))
        b = ObservationMask(np.array([[True, False], [False, True]]))
        out = a.intersect(b)
        assert out.observed.tolist() == [[True, False], [False, True]]

    def test_shape_mismatch(self):
        a = ObservationMask(np.ones((2, 2), dtype=bool))
        b = ObservationMask(np.ones((3, 2), dtype=bool))
        with pytest.raises(ValidationError):
            a.intersect(b)


class TestMaskFromMissingValues:
    def test_nan_becomes_unobserved_zero(self):
        x = np.array([[1.0, np.nan], [2.0, 3.0]])
        filled, mask = mask_from_missing_values(x)
        assert filled[0, 1] == 0.0
        assert not mask.observed[0, 1]
        assert mask.observed[1, 1]

    def test_does_not_mutate_input(self):
        x = np.array([[np.nan, 1.0]])
        mask_from_missing_values(x)
        assert np.isnan(x[0, 0])
