"""Benchmark payload contract and the oocore runner cell."""

from __future__ import annotations

import pytest

from repro.bench.schema import (
    ACCEPTED_METRICS,
    BENCH_SCHEMAS,
    check_metrics,
    validate_bench_payload,
)
from repro.oocore.benchmark import PARALLEL_DEVIATION_TOLERANCE, oocore_benchmark
from repro.runner.cells import CELL_KINDS, run_cell


class TestSchemaRegistration:
    def test_oocore_is_a_registered_benchmark(self):
        assert "oocore" in BENCH_SCHEMAS
        assert "oocore" in ACCEPTED_METRICS

    def test_acceptance_flags_are_ratcheted(self):
        paths = {check.path for check in ACCEPTED_METRICS["oocore"]}
        assert "acceptance.*" in paths
        assert "equivalence.parallel_max_rel_deviation" in paths

    def test_tolerance_metric_matches_the_pinned_constant(self):
        (dev_check,) = [
            c for c in ACCEPTED_METRICS["oocore"]
            if c.path == "equivalence.parallel_max_rel_deviation"
        ]
        assert dev_check.limit == PARALLEL_DEVIATION_TOLERANCE


@pytest.mark.slow
class TestSmokePayload:
    @pytest.fixture(scope="class")
    def payload(self):
        return oocore_benchmark(smoke=True, jobs=2)

    def test_payload_validates_against_the_schema(self, payload):
        assert validate_bench_payload("oocore", payload, require_envelope=False) == []

    def test_metrics_inside_contract(self, payload):
        assert check_metrics("oocore", payload) == []

    def test_all_acceptance_flags_hold(self, payload):
        assert all(payload["acceptance"].values()), payload["acceptance"]

    def test_curve_is_monotone_in_rows(self, payload):
        rows = [point["rows"] for point in payload["curve"]]
        assert rows == sorted(rows) and len(rows) >= 2


class TestOocoreCell:
    PARAMS = {
        "spec": "lowrank_landmark",
        "spec_params": {"rows": 96, "cols": 9, "rank": 3},
        "seed": 11,
        "block_rows": 32,
        "epochs": 2,
    }

    def test_registered(self):
        assert "oocore_fit" in CELL_KINDS

    def test_cell_is_deterministic(self):
        a = run_cell("oocore_fit", dict(self.PARAMS))
        b = run_cell("oocore_fit", dict(self.PARAMS))
        assert a["factor_hash"] == b["factor_hash"]
        assert a["value"] == b["value"]
        assert a["landmark_block_intact"] is True
        assert a["epochs"] == 2

    def test_cell_value_is_the_final_objective(self):
        result = run_cell("oocore_fit", dict(self.PARAMS))
        assert isinstance(result["value"], float) and result["value"] >= 0.0
