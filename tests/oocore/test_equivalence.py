"""Equivalence contract: sharded streaming reduces to the in-core fit.

The out-of-core path is only trustworthy if it is *provably the same
algorithm* as the in-core stochastic fit.  Three layers of that claim:

1. With ``shuffle=False`` and block-aligned batches, the streaming
   factorizer reproduces the in-core SGD fit **bit-exactly** — factors
   and telemetry.
2. ``fit_oocore(jobs=1)`` is the serial streaming path, bit-exactly.
3. ``jobs=N`` differs only through within-round V staleness, bounded by
   the pinned tolerance the benchmark ratchets.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.specs import generate
from repro.core.initialization import init_factors
from repro.core.smfl import SMFL
from repro.oocore import (
    ArrayBlockSource,
    GeneratorBlockSource,
    StreamingFactorizer,
    fit_oocore,
    fit_parallel,
    streaming_init,
)
from repro.oocore.benchmark import PARALLEL_DEVIATION_TOLERANCE

COLS, RANK = 9, 4


def _problem(rows: int, seed: int):
    bench = generate("lowrank_landmark", {"rows": rows, "cols": COLS, "rank": RANK}, seed=seed)
    x_observed = bench.mask.project(np.nan_to_num(bench.x_missing))
    return bench, x_observed, bench.mask.observed


def _incore(bench, *, epochs: int, batch_size: int, seed: int, shuffle: bool, lr: float = 1e-3):
    model = SMFL(
        rank=RANK, lam=0.0, method="stochastic", batch_size=batch_size,
        learning_rate=lr, tol=0.0, max_iter=epochs, random_state=seed, shuffle=shuffle,
    )
    # x_missing stores injected cells as 0.0 (not NaN) for this spec, so
    # the mask MUST ride along or the fit would treat them as observed.
    model.fit(bench.x_missing, bench.mask)
    return model


class TestSerialBitExactness:
    @given(
        rows_pow=st.integers(min_value=6, max_value=8),
        batch_pow=st.integers(min_value=4, max_value=6),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        epochs=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=8, deadline=None)
    def test_streaming_reduces_to_incore_bit_exactly(self, rows_pow, batch_pow, seed, epochs):
        """Unshuffled, block-aligned streaming == in-core SGD, bit for bit."""
        rows, batch_size = 2**rows_pow, 2**batch_pow
        block_rows = batch_size * 2  # block-aligned: block_rows % batch_size == 0
        bench, x_observed, observed = _problem(rows, seed)
        incore = _incore(bench, epochs=epochs, batch_size=batch_size, seed=seed, shuffle=False)

        init = _incore(bench, epochs=0, batch_size=batch_size, seed=seed, shuffle=False)
        streamer = StreamingFactorizer(
            rows, init.v_, u0=init.u_, frozen_prefix=init.landmarks_.n_spatial,
            batch_size=batch_size, shuffle=False, seed=seed, learning_rate=1e-3,
        ).fit(ArrayBlockSource(x_observed, observed, block_rows), epochs=incore.n_iter_)

        np.testing.assert_array_equal(streamer.u, incore.u_)
        np.testing.assert_array_equal(streamer.v, incore.v_)
        assert tuple(streamer.sampled_objectives) == incore.fit_report_.sampled_objectives
        assert streamer.landmark_block_intact

    def test_jobs1_oocore_matches_streaming_factorizer(self):
        rows, seed, epochs = 192, 11, 3
        _, x_observed, observed = _problem(rows, seed)
        u0, v0 = init_factors(x_observed, observed, RANK, random_state=seed)
        source = ArrayBlockSource(x_observed, observed, block_rows=64)
        a = fit_oocore(source, v0, u0, epochs=epochs, jobs=1, frozen_prefix=2, seed=seed)
        b = fit_oocore(source, v0, u0, epochs=epochs, jobs=1, frozen_prefix=2, seed=seed)
        np.testing.assert_array_equal(a.u, b.u)
        np.testing.assert_array_equal(a.v, b.v)
        assert a.sampled_objectives == b.sampled_objectives
        assert a.jobs == 1 and a.epochs == epochs


class TestParallelAgreement:
    def test_parallel_jobs1_is_bit_identical_to_serial(self):
        rows, seed = 256, 5
        _, x_observed, observed = _problem(rows, seed)
        u0, v0 = init_factors(x_observed, observed, RANK, random_state=seed)
        source = ArrayBlockSource(x_observed, observed, block_rows=64)
        serial = fit_oocore(source, v0, u0, epochs=2, jobs=1, frozen_prefix=2, seed=seed)
        parallel = fit_parallel(source, v0, u0, epochs=2, jobs=1, frozen_prefix=2, seed=seed)
        np.testing.assert_array_equal(parallel.u, serial.u)
        np.testing.assert_array_equal(parallel.v, serial.v)
        assert parallel.sampled_objectives == serial.sampled_objectives
        assert parallel.rows_touched == serial.rows_touched

    def test_jobs4_agrees_within_pinned_tolerance(self):
        rows, seed = 512, 3
        _, x_observed, observed = _problem(rows, seed)
        u0, v0 = init_factors(x_observed, observed, RANK, random_state=seed)
        source = ArrayBlockSource(x_observed, observed, block_rows=128)
        # lr inside the 1/n_rows stability regime — above it, the
        # within-round V staleness amplifies instead of perturbing.
        lr = 5e-4
        serial = fit_oocore(
            source, v0, u0, epochs=3, jobs=1, frozen_prefix=2, seed=seed, learning_rate=lr
        )
        parallel = fit_parallel(
            source, v0, u0, epochs=3, jobs=4, frozen_prefix=2, seed=seed, learning_rate=lr
        )

        def rel_dev(a, b):
            return float(np.linalg.norm(a - b) / max(np.linalg.norm(b), 1e-12))

        assert rel_dev(parallel.u, serial.u) < PARALLEL_DEVIATION_TOLERANCE
        assert rel_dev(parallel.v, serial.v) < PARALLEL_DEVIATION_TOLERANCE
        assert parallel.jobs == 4

    def test_parallel_is_deterministic_across_runs(self):
        rows, seed = 256, 9
        _, x_observed, observed = _problem(rows, seed)
        u0, v0 = init_factors(x_observed, observed, RANK, random_state=seed)
        source = ArrayBlockSource(x_observed, observed, block_rows=64)
        a = fit_parallel(source, v0, u0, epochs=2, jobs=2, frozen_prefix=2, seed=seed)
        b = fit_parallel(source, v0, u0, epochs=2, jobs=2, frozen_prefix=2, seed=seed)
        np.testing.assert_array_equal(a.u, b.u)
        np.testing.assert_array_equal(a.v, b.v)


class TestLandmarkFreeze:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_landmark_block_is_bit_frozen(self, jobs):
        rows, seed, prefix = 256, 17, 2
        _, x_observed, observed = _problem(rows, seed)
        u0, v0 = init_factors(x_observed, observed, RANK, random_state=seed)
        source = ArrayBlockSource(x_observed, observed, block_rows=64)
        result = fit_oocore(
            source, v0, u0, epochs=3, jobs=jobs, frozen_prefix=prefix, seed=seed
        )
        np.testing.assert_array_equal(result.v[:, :prefix], v0[:, :prefix])
        assert result.landmark_block_intact
        # ...and the live block actually moved — frozen != inert fit.
        assert not np.array_equal(result.v[:, prefix:], v0[:, prefix:])


class TestStreamingInit:
    def test_single_block_source_matches_incore_init(self):
        rows, seed = 96, 21
        _, x_observed, observed = _problem(rows, seed)
        source = ArrayBlockSource(x_observed, observed, block_rows=rows)
        u_stream, v_stream = streaming_init(source, RANK, random_state=seed)
        u_incore, v_incore = init_factors(
            x_observed, observed, RANK, strategy="random", random_state=seed
        )
        np.testing.assert_array_equal(u_stream, u_incore)
        np.testing.assert_array_equal(v_stream, v_incore)

    def test_generator_source_init_is_deterministic(self):
        source = GeneratorBlockSource(
            "lowrank_landmark", {"rows": 64, "cols": COLS, "rank": RANK},
            seed=2, block_rows=32,
        )
        a = streaming_init(source, RANK, random_state=4)
        b = streaming_init(source, RANK, random_state=4)
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])
