"""Tests for the out-of-core streaming/parallel fitting subsystem."""
