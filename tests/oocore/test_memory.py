"""Peak-memory contract of the out-of-core path.

The entire point of :mod:`repro.oocore` is that fitting never
materializes the full ``N x M`` matrix — nor the in-core pipeline's
``N x N`` spatial similarity graph.  ``tracemalloc`` (which numpy's
allocator reports into) measures the allocation peak of a streaming fit
directly; the in-core fit on the same instance is the control that
provably crosses the dense floor.
"""

from __future__ import annotations

import functools
import tracemalloc

import numpy as np

from repro.bench.specs import generate
from repro.core.smfl import SMFL
from repro.oocore import GeneratorBlockSource, StreamingFactorizer, streaming_init

ROWS, COLS, RANK = 4_096, 13, 4
BLOCK_ROWS = 256
DENSE_BYTES = ROWS * COLS * 8  # one float64 copy of the data alone


@functools.lru_cache(maxsize=1)
def _streaming_peak() -> int:
    source = GeneratorBlockSource(
        "lowrank_landmark", {"rows": ROWS, "cols": COLS, "rank": RANK},
        seed=0, block_rows=BLOCK_ROWS,
    )
    u_stream, v_stream = streaming_init(source, RANK, random_state=0)
    streamer = StreamingFactorizer(
        ROWS, v_stream, u0=u_stream, frozen_prefix=2,
        batch_size=BLOCK_ROWS, shuffle=True, seed=0, learning_rate=1e-6,
    )
    # Warm epoch allocates every workspace buffer; the measured epoch is
    # steady state plus per-block generation.
    streamer.fit(source, epochs=1)
    tracemalloc.start()
    try:
        streamer.fit(source, epochs=1)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


def _dense_peak() -> int:
    tracemalloc.start()
    try:
        bench = generate(
            "lowrank_landmark", {"rows": ROWS, "cols": COLS, "rank": RANK}, seed=0
        )
        model = SMFL(
            rank=RANK, lam=0.0, method="stochastic", batch_size=BLOCK_ROWS,
            learning_rate=1e-6, tol=0.0, max_iter=1, random_state=0,
        )
        model.fit(bench.x_missing, bench.mask)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


def test_streaming_fit_stays_under_the_dense_floor():
    """The out-of-core epoch peaks below one dense copy of the matrix.

    The U factor (``N x K``) is resident by design; everything else is
    block-sized.  The bound is the dense matrix itself, which the U
    factor plus a handful of blocks cannot reach at these shapes.
    """
    peak = _streaming_peak()
    assert peak < DENSE_BYTES, (
        f"streaming epoch peaked at {peak} bytes; dense floor is {DENSE_BYTES}"
    )


def test_dense_fit_provably_exceeds_the_same_bound():
    """Control: the in-core pipeline cannot stay under the dense floor."""
    peak = _dense_peak()
    assert peak > DENSE_BYTES, (
        f"in-core fit peaked at {peak} bytes, under the {DENSE_BYTES} floor; "
        "the memory bound above is no longer meaningful"
    )


def test_u_factor_dominates_the_streaming_peak():
    """The resident state is U plus O(block) buffers, not O(N x M)."""
    peak = _streaming_peak()
    u_bytes = ROWS * RANK * 8
    block_bytes = BLOCK_ROWS * COLS * 8
    # Generous envelope: U + 32 block-sized arrays (generation scratch,
    # workspace buffers, residuals) — still far under the dense floor.
    assert peak < u_bytes + 32 * block_bytes
    assert np.isfinite(peak)
