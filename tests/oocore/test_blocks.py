"""Row-block source contract: slicing, validation, and pickling."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.oocore import (
    ArrayBlockSource,
    GeneratorBlockSource,
    MemmapBlockSource,
    RowBlock,
    block_order,
)


@pytest.fixture
def matrix(rng) -> tuple[np.ndarray, np.ndarray]:
    x = rng.random((100, 7))
    observed = rng.random((100, 7)) > 0.3
    x_observed = np.where(observed, x, 0.0)
    return x_observed, observed


class TestRowBlock:
    def test_rows_property(self, matrix):
        x_observed, observed = matrix
        block = RowBlock(0, 0, 100, x_observed, observed)
        assert block.rows == 100

    def test_stop_before_start_names_field(self, matrix):
        x_observed, observed = matrix
        with pytest.raises(ValidationError, match="stop"):
            RowBlock(0, 50, 10, x_observed[:40], observed[:40])

    def test_wrong_dtype_names_x_observed(self, matrix):
        x_observed, observed = matrix
        with pytest.raises(ValidationError, match="x_observed"):
            RowBlock(0, 0, 100, x_observed.astype(np.float32), observed)

    def test_shape_mismatch_names_observed(self, matrix):
        x_observed, observed = matrix
        with pytest.raises(ValidationError, match="observed"):
            RowBlock(0, 0, 100, x_observed, observed[:, :5])

    def test_mask_dtype_names_observed(self, matrix):
        x_observed, observed = matrix
        with pytest.raises(ValidationError, match="observed"):
            RowBlock(0, 0, 100, x_observed, observed.astype(np.int8))


class TestArrayBlockSource:
    def test_blocks_tile_the_matrix(self, matrix):
        x_observed, observed = matrix
        source = ArrayBlockSource(x_observed, observed, block_rows=32)
        assert source.n_blocks == 4
        seen = [source.block(i) for i in range(source.n_blocks)]
        np.testing.assert_array_equal(
            np.vstack([b.x_observed for b in seen]), x_observed
        )
        np.testing.assert_array_equal(np.vstack([b.observed for b in seen]), observed)
        assert [b.start for b in seen] == [0, 32, 64, 96]
        assert seen[-1].stop == 100

    def test_iter_matches_indexed_access(self, matrix):
        x_observed, observed = matrix
        source = ArrayBlockSource(x_observed, observed, block_rows=40)
        for i, block in enumerate(source):
            assert block.index == i
            np.testing.assert_array_equal(block.x_observed, source.block(i).x_observed)

    def test_out_of_range_index_raises(self, matrix):
        x_observed, observed = matrix
        source = ArrayBlockSource(x_observed, observed, block_rows=32)
        with pytest.raises(ValidationError, match="block index"):
            source.block(4)
        with pytest.raises(ValidationError, match="block index"):
            source.block(-1)


class TestMemmapBlockSource:
    def test_matches_array_source_bit_exactly(self, matrix, tmp_path):
        x_observed, observed = matrix
        data_path = tmp_path / "data.npy"
        mask_path = tmp_path / "mask.npy"
        np.save(data_path, x_observed)
        np.save(mask_path, observed)
        mm = MemmapBlockSource(data_path, mask_path, block_rows=16)
        arr = ArrayBlockSource(x_observed, observed, block_rows=16)
        assert mm.n_blocks == arr.n_blocks
        for i in range(mm.n_blocks):
            np.testing.assert_array_equal(mm.block(i).x_observed, arr.block(i).x_observed)
            np.testing.assert_array_equal(mm.block(i).observed, arr.block(i).observed)

    def test_zeroes_unobserved_cells(self, matrix, tmp_path):
        x_observed, observed = matrix
        dirty = x_observed + np.where(observed, 0.0, 123.0)
        np.save(tmp_path / "data.npy", dirty)
        np.save(tmp_path / "mask.npy", observed)
        source = MemmapBlockSource(tmp_path / "data.npy", tmp_path / "mask.npy", block_rows=50)
        for block in source:
            assert np.all(block.x_observed[~block.observed] == 0.0)

    def test_wrong_data_dtype_names_field(self, matrix, tmp_path):
        x_observed, observed = matrix
        np.save(tmp_path / "data.npy", x_observed.astype(np.float32))
        np.save(tmp_path / "mask.npy", observed)
        with pytest.raises(ValidationError, match="data"):
            MemmapBlockSource(tmp_path / "data.npy", tmp_path / "mask.npy", block_rows=50)

    def test_wrong_mask_shape_names_field(self, matrix, tmp_path):
        x_observed, observed = matrix
        np.save(tmp_path / "data.npy", x_observed)
        np.save(tmp_path / "mask.npy", observed[:, :5])
        with pytest.raises(ValidationError, match="mask"):
            MemmapBlockSource(tmp_path / "data.npy", tmp_path / "mask.npy", block_rows=50)

    def test_pickle_roundtrip_reopens_the_files(self, matrix, tmp_path):
        x_observed, observed = matrix
        np.save(tmp_path / "data.npy", x_observed)
        np.save(tmp_path / "mask.npy", observed)
        source = MemmapBlockSource(tmp_path / "data.npy", tmp_path / "mask.npy", block_rows=30)
        clone = pickle.loads(pickle.dumps(source))
        for i in range(source.n_blocks):
            np.testing.assert_array_equal(
                clone.block(i).x_observed, source.block(i).x_observed
            )


class TestGeneratorBlockSource:
    def test_blocks_are_deterministic(self):
        a = GeneratorBlockSource(
            "lowrank_landmark", {"rows": 64, "cols": 9, "rank": 3}, seed=7, block_rows=16
        )
        b = GeneratorBlockSource(
            "lowrank_landmark", {"rows": 64, "cols": 9, "rank": 3}, seed=7, block_rows=16
        )
        for i in range(a.n_blocks):
            np.testing.assert_array_equal(a.block(i).x_observed, b.block(i).x_observed)
            np.testing.assert_array_equal(a.block(i).observed, b.block(i).observed)

    def test_different_blocks_differ(self):
        source = GeneratorBlockSource(
            "lowrank_landmark", {"rows": 64, "cols": 9, "rank": 3}, seed=7, block_rows=32
        )
        assert not np.array_equal(source.block(0).x_observed, source.block(1).x_observed)

    def test_requires_rows_param(self):
        with pytest.raises(ValidationError, match="rows"):
            GeneratorBlockSource("lowrank_landmark", {"cols": 9, "rank": 3}, seed=0)

    def test_pickle_roundtrip_is_bit_exact(self):
        source = GeneratorBlockSource(
            "lowrank_landmark", {"rows": 48, "cols": 9, "rank": 3}, seed=3, block_rows=16
        )
        clone = pickle.loads(pickle.dumps(source))
        for i in range(source.n_blocks):
            np.testing.assert_array_equal(
                clone.block(i).x_observed, source.block(i).x_observed
            )


class TestBlockOrder:
    def test_depends_on_all_key_parts(self):
        base = block_order(50, seed=1, epoch=0, block_index=0, shuffle=True)
        assert not np.array_equal(
            base, block_order(50, seed=2, epoch=0, block_index=0, shuffle=True)
        )
        assert not np.array_equal(
            base, block_order(50, seed=1, epoch=1, block_index=0, shuffle=True)
        )
        assert not np.array_equal(
            base, block_order(50, seed=1, epoch=0, block_index=1, shuffle=True)
        )
        np.testing.assert_array_equal(
            base, block_order(50, seed=1, epoch=0, block_index=0, shuffle=True)
        )

    def test_unshuffled_is_identity(self):
        np.testing.assert_array_equal(
            block_order(10, seed=5, epoch=2, block_index=3, shuffle=False), np.arange(10)
        )

    def test_is_a_permutation(self):
        order = block_order(33, seed=9, epoch=1, block_index=2, shuffle=True)
        np.testing.assert_array_equal(np.sort(order), np.arange(33))
