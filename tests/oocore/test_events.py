"""Live events from the oocore paths: equivalence, liveness, post-mortems.

The contract under test (DESIGN.md section 3.16): the serial streaming
path and the shard-parallel path emit the *same* ``(event, epoch,
round, block)`` set — worker-scoped events excluded — so a consumer
tailing the log cannot tell the execution strategies apart; a worker
that dies (SIGKILL, no chance to report) or raises leaves a persisted
post-mortem event in the JSONL file *before* the parent raises; and a
parallel fit feeds per-worker last-seen heartbeat gauges.
"""

from __future__ import annotations

import os
import signal

import numpy as np
import pytest

from repro.core.initialization import init_factors
from repro.obs.live.events import (
    EventLog,
    RingBufferSink,
    event_log_to,
    read_event_log,
    use_event_log,
)
from repro.obs.metrics import get_metrics, reset_metrics
from repro.oocore import ArrayBlockSource, fit_oocore, fit_parallel

ROWS, COLS, RANK = 256, 9, 4
BLOCK_ROWS = 64


class KillerSource(ArrayBlockSource):
    """SIGKILLs the worker on ``kill_index`` — no error tuple possible."""

    kill_index = 1

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._parent_pid = os.getpid()

    def _materialize(self, index, start, stop):
        if index == self.kill_index and os.getpid() != self._parent_pid:
            os.kill(os.getpid(), signal.SIGKILL)
        return super()._materialize(index, start, stop)


class FaultySource(ArrayBlockSource):
    """Raises inside the worker; the error tuple must surface."""

    def _materialize(self, index, start, stop):
        if index == 2:
            raise ValueError("synthetic block corruption")
        return super()._materialize(index, start, stop)


@pytest.fixture
def problem(rng):
    x = rng.random((ROWS, COLS))
    observed = rng.random((ROWS, COLS)) > 0.3
    x_observed = np.where(observed, x, 0.0)
    u0, v0 = init_factors(x_observed, observed, RANK, random_state=0)
    return x_observed, observed, u0, v0


def _equivalence_key(record):
    attrs = record.get("attrs") or {}
    return (
        record["event"],
        attrs.get("epoch"),
        attrs.get("round"),
        attrs.get("block"),
    )


def _shared_events(records):
    """The strategy-independent event keys (worker events excluded)."""
    return sorted(
        _equivalence_key(r)
        for r in records
        if not r["event"].startswith("oocore.worker")
    )


class TestSerialParallelEquivalence:
    def test_event_sets_match_across_strategies(self, problem):
        x_observed, observed, u0, v0 = problem
        source = ArrayBlockSource(x_observed, observed, BLOCK_ROWS)

        serial_sink = RingBufferSink(4096)
        with use_event_log(EventLog(serial_sink)):
            fit_oocore(
                source, v0, u0, epochs=2, jobs=1, frozen_prefix=2, seed=0
            )
        parallel_sink = RingBufferSink(4096)
        with use_event_log(EventLog(parallel_sink)):
            fit_parallel(
                source, v0, u0, epochs=2, jobs=2, frozen_prefix=2, seed=0
            )

        serial = _shared_events(serial_sink.tail())
        parallel = _shared_events(parallel_sink.tail())
        assert serial == parallel
        # The set is non-trivial: every block of every epoch is there.
        block_done = [k for k in serial if k[0] == "oocore.block_done"]
        assert len(block_done) == 2 * (ROWS // BLOCK_ROWS)

    def test_round_equals_block_index_on_both_paths(self, problem):
        # ``round`` is the V-step application sequence number; both
        # paths apply V steps in ascending block order, so it must
        # equal the block index (the physical scheduling round rides
        # along as the parallel-only ``sched_round``).
        x_observed, observed, u0, v0 = problem
        source = ArrayBlockSource(x_observed, observed, BLOCK_ROWS)
        sink = RingBufferSink(4096)
        with use_event_log(EventLog(sink)):
            fit_parallel(
                source, v0, u0, epochs=1, jobs=2, frozen_prefix=2, seed=0
            )
        done = [r for r in sink.tail() if r["event"] == "oocore.block_done"]
        assert done
        for record in done:
            attrs = record["attrs"]
            assert attrs["round"] == attrs["block"]
            assert attrs["sched_round"] == attrs["block"] // 2

    def test_workers_never_emit_events(self, problem):
        # All records come from the parent: the JSONL merge story needs
        # no cross-process ordering because only one pid ever writes.
        x_observed, observed, u0, v0 = problem
        source = ArrayBlockSource(x_observed, observed, BLOCK_ROWS)
        sink = RingBufferSink(4096)
        with use_event_log(EventLog(sink)):
            fit_parallel(
                source, v0, u0, epochs=1, jobs=2, frozen_prefix=2, seed=0
            )
        pids = {record["pid"] for record in sink.tail()}
        assert pids == {os.getpid()}


class TestFaultPostMortems:
    def test_sigkilled_worker_leaves_persisted_death_event(
        self, problem, tmp_path
    ):
        # SIGKILL gives the worker no chance to report; the parent must
        # attribute the death from the heartbeat slab and persist the
        # event BEFORE raising, so the JSONL post-mortem survives.
        x_observed, observed, u0, v0 = problem
        source = KillerSource(x_observed, observed, BLOCK_ROWS)
        log_path = str(tmp_path / "events.jsonl")
        with event_log_to(log_path):
            with pytest.raises(RuntimeError, match="worker"):
                fit_parallel(
                    source, v0, u0,
                    epochs=2, jobs=2, frozen_prefix=2, seed=0, timeout=30.0,
                )
        records = read_event_log(log_path)
        deaths = [r for r in records if r["event"] == "oocore.worker_died"]
        assert len(deaths) == 1
        attrs = deaths[0]["attrs"]
        assert deaths[0]["level"] == "error"
        assert attrs["worker"] in (0, 1)
        assert attrs["block"] == KillerSource.kill_index
        assert attrs["exitcode"] == -signal.SIGKILL

    def test_worker_exception_event_survives_a_swallowed_raise(
        self, problem, tmp_path
    ):
        x_observed, observed, u0, v0 = problem
        source = FaultySource(x_observed, observed, BLOCK_ROWS)
        log_path = str(tmp_path / "events.jsonl")
        with event_log_to(log_path):
            try:
                fit_parallel(
                    source, v0, u0, epochs=1, jobs=2, frozen_prefix=2, seed=0
                )
            except RuntimeError:
                pass  # a sloppy caller swallows it; the log must not
        records = read_event_log(log_path)
        errors = [r for r in records if r["event"] == "oocore.worker_error"]
        assert len(errors) == 1
        attrs = errors[0]["attrs"]
        assert attrs["block"] == 2
        assert "synthetic block corruption" in attrs["detail"]


class TestWorkerLiveness:
    def test_parallel_fit_publishes_last_seen_gauges(self, problem):
        x_observed, observed, u0, v0 = problem
        source = ArrayBlockSource(x_observed, observed, BLOCK_ROWS)
        reset_metrics()
        fit_parallel(source, v0, u0, epochs=1, jobs=2, frozen_prefix=2, seed=0)
        snapshot = get_metrics().snapshot()
        gauges = {
            key: entry
            for key, entry in snapshot.items()
            if key.startswith("oocore.worker.last_seen_age_seconds")
        }
        # Every worker that stamped a heartbeat gets a labelled gauge;
        # at least one worker must have (the fit did finish).
        assert gauges
        for key, entry in gauges.items():
            assert entry["type"] == "gauge"
            assert entry["value"] >= 0.0
            assert 'worker="' in key
