"""Fault injection: dead workers, worker exceptions, shm lifecycle.

A parallel fit that hangs or leaks shared memory on failure is worse
than no parallel fit.  These tests kill and sabotage workers mid-epoch
and assert the parent raises a clear :class:`RuntimeError` promptly and
unlinks every shared-memory segment it created — on failure *and* on
success.
"""

from __future__ import annotations

import os
import signal
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.core.initialization import init_factors
from repro.oocore import ArrayBlockSource, fit_parallel
from repro.oocore.parallel import LAST_RUN_SHM_NAMES

ROWS, COLS, RANK = 256, 9, 4
BLOCK_ROWS = 64


class KillerSource(ArrayBlockSource):
    """Blows away the worker process when it loads ``kill_index``.

    SIGKILL is uncatchable — the worker gets no chance to report an
    error tuple, exactly like an OOM kill in production.  The parent
    only learns from the dead process's exit code.
    """

    kill_index = 1

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._parent_pid = os.getpid()

    def _materialize(self, index, start, stop):
        if index == self.kill_index and os.getpid() != self._parent_pid:
            os.kill(os.getpid(), signal.SIGKILL)
        return super()._materialize(index, start, stop)


class FaultySource(ArrayBlockSource):
    """Raises inside the worker; the error tuple must surface."""

    def _materialize(self, index, start, stop):
        if index == 2:
            raise ValueError("synthetic block corruption")
        return super()._materialize(index, start, stop)


@pytest.fixture
def problem(rng):
    x = rng.random((ROWS, COLS))
    observed = rng.random((ROWS, COLS)) > 0.3
    x_observed = np.where(observed, x, 0.0)
    u0, v0 = init_factors(x_observed, observed, RANK, random_state=0)
    return x_observed, observed, u0, v0


def _assert_all_shm_unlinked():
    assert LAST_RUN_SHM_NAMES, "fit_parallel did not record its shm names"
    for name in LAST_RUN_SHM_NAMES:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


def test_killed_worker_raises_instead_of_hanging(problem):
    x_observed, observed, u0, v0 = problem
    source = KillerSource(x_observed, observed, BLOCK_ROWS)
    with pytest.raises(RuntimeError, match="worker"):
        fit_parallel(
            source, v0, u0, epochs=2, jobs=2, frozen_prefix=2, seed=0, timeout=30.0
        )
    _assert_all_shm_unlinked()


def test_worker_exception_surfaces_as_runtime_error(problem):
    x_observed, observed, u0, v0 = problem
    source = FaultySource(x_observed, observed, BLOCK_ROWS)
    with pytest.raises(RuntimeError, match="synthetic block corruption"):
        fit_parallel(source, v0, u0, epochs=1, jobs=2, frozen_prefix=2, seed=0)
    _assert_all_shm_unlinked()


def test_successful_run_unlinks_every_segment(problem):
    x_observed, observed, u0, v0 = problem
    source = ArrayBlockSource(x_observed, observed, BLOCK_ROWS)
    result = fit_parallel(source, v0, u0, epochs=1, jobs=2, frozen_prefix=2, seed=0)
    assert result.u.shape == (ROWS, RANK)
    _assert_all_shm_unlinked()
    # The result arrays survive the unlink — they are copies, not views
    # into the (now freed) shared segments.
    assert np.isfinite(result.u).all() and np.isfinite(result.v).all()
