"""Branch coverage of the streaming seam: coercion, validation, decay."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.initialization import init_factors
from repro.exceptions import ValidationError
from repro.oocore import ArrayBlockSource, StreamingFactorizer

ROWS, COLS, RANK = 128, 7, 3


@pytest.fixture
def problem(rng):
    x = rng.random((ROWS, COLS))
    observed = rng.random((ROWS, COLS)) > 0.3
    x_observed = np.where(observed, x, 0.0)
    u0, v0 = init_factors(x_observed, observed, RANK, random_state=0)
    return x_observed, observed, u0, v0


def _factorizer(u0, v0, **overrides):
    kwargs = dict(
        u0=u0, frozen_prefix=2, batch_size=32, shuffle=False, seed=0,
        learning_rate=1e-3,
    )
    kwargs.update(overrides)
    return StreamingFactorizer(ROWS, v0, **kwargs)


class TestRawPairCoercion:
    def test_raw_pair_matches_rowblock_path(self, problem):
        x_observed, observed, u0, v0 = problem
        source = ArrayBlockSource(x_observed, observed, block_rows=64)

        via_blocks = _factorizer(u0, v0)
        for block in source:
            via_blocks.partial_fit(block)
        via_blocks.finish_epoch()

        via_raw = _factorizer(u0, v0)
        for block in source:
            via_raw.partial_fit(
                block.x_observed, block.observed, start=block.start, index=block.index
            )
        via_raw.finish_epoch()

        np.testing.assert_array_equal(via_raw.u, via_blocks.u)
        np.testing.assert_array_equal(via_raw.v, via_blocks.v)

    def test_raw_pair_without_start_raises(self, problem):
        x_observed, observed, u0, v0 = problem
        with pytest.raises(ValidationError, match="start"):
            _factorizer(u0, v0).partial_fit(x_observed[:32], observed[:32])


class TestValidation:
    def test_block_past_n_rows_raises(self, problem):
        x_observed, observed, u0, v0 = problem
        factorizer = _factorizer(u0, v0)
        with pytest.raises(ValidationError):
            factorizer.partial_fit(
                x_observed[:32], observed[:32], start=ROWS - 8
            )

    def test_wrong_column_count_raises(self, problem):
        x_observed, observed, u0, v0 = problem
        factorizer = _factorizer(u0, v0)
        with pytest.raises(ValidationError):
            factorizer.partial_fit(
                x_observed[:32, :5], observed[:32, :5], start=0
            )

    def test_bad_frozen_prefix_raises(self, problem):
        x_observed, observed, u0, v0 = problem
        with pytest.raises(ValidationError):
            _factorizer(u0, v0, frozen_prefix=COLS + 1)

    def test_one_d_v0_raises(self, problem):
        x_observed, observed, u0, v0 = problem
        with pytest.raises(ValidationError, match="v0"):
            StreamingFactorizer(ROWS, v0[0], u0=u0)


class TestFitDynamics:
    def test_lr_decay_changes_the_trajectory_deterministically(self, problem):
        x_observed, observed, u0, v0 = problem
        source = ArrayBlockSource(x_observed, observed, block_rows=64)
        flat = _factorizer(u0, v0, lr_decay=0.0).fit(source, epochs=3)
        decayed_a = _factorizer(u0, v0, lr_decay=0.5).fit(source, epochs=3)
        decayed_b = _factorizer(u0, v0, lr_decay=0.5).fit(source, epochs=3)
        assert not np.array_equal(decayed_a.u, flat.u)
        np.testing.assert_array_equal(decayed_a.u, decayed_b.u)

    def test_zero_frozen_prefix_updates_all_of_v(self, problem):
        x_observed, observed, u0, v0 = problem
        source = ArrayBlockSource(x_observed, observed, block_rows=64)
        factorizer = _factorizer(u0, v0, frozen_prefix=0).fit(source, epochs=1)
        assert not np.array_equal(factorizer.v[:, :2], v0[:, :2])
        assert factorizer.landmark_block_intact  # empty prefix is trivially intact

    def test_evaluate_matches_direct_residual(self, problem):
        x_observed, observed, u0, v0 = problem
        source = ArrayBlockSource(x_observed, observed, block_rows=32)
        factorizer = _factorizer(u0, v0).fit(source, epochs=2)
        residual = factorizer.u @ factorizer.v - x_observed
        residual[~observed] = 0.0
        direct = float(np.vdot(residual, residual))
        assert factorizer.evaluate(source) == pytest.approx(direct, rel=1e-9)

    def test_epoch_counter_and_telemetry_lengths_agree(self, problem):
        x_observed, observed, u0, v0 = problem
        source = ArrayBlockSource(x_observed, observed, block_rows=64)
        factorizer = _factorizer(u0, v0).fit(source, epochs=3)
        assert factorizer.epoch == 3
        assert len(factorizer.sampled_objectives) == 3
        assert factorizer.rows_touched == [ROWS] * 3
