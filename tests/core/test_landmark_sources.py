"""Unit tests for the alternative landmark sources."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.landmark_sources import LANDMARK_SOURCES, build_landmarks
from repro.exceptions import ValidationError


@pytest.fixture
def coords(rng):
    return rng.random((60, 2))


@pytest.mark.parametrize("source", LANDMARK_SOURCES)
class TestAllSources:
    def test_shape_and_nonnegativity(self, coords, source):
        landmarks = build_landmarks(coords, 5, source=source, random_state=0)
        assert landmarks.values.shape == (5, 2)
        assert (landmarks.values >= 0).all()

    def test_deterministic(self, coords, source):
        a = build_landmarks(coords, 4, source=source, random_state=7)
        b = build_landmarks(coords, 4, source=source, random_state=7)
        assert np.allclose(a.values, b.values)

    def test_inside_bounding_box(self, coords, source):
        landmarks = build_landmarks(coords, 6, source=source, random_state=0)
        assert (landmarks.values >= coords.min(axis=0) - 1e-9).all()
        assert (landmarks.values <= coords.max(axis=0) + 1e-9).all()

    def test_handles_missing_cells(self, coords, source):
        coords = coords.copy()
        coords[0, 0] = np.nan
        landmarks = build_landmarks(coords, 3, source=source, random_state=0)
        assert np.isfinite(landmarks.values).all()


class TestSpecificSources:
    def test_unknown_source(self, coords):
        with pytest.raises(ValidationError, match="unknown landmark source"):
            build_landmarks(coords, 3, source="oracle")

    def test_sample_returns_observed_points(self, coords):
        landmarks = build_landmarks(coords, 5, source="sample", random_state=0)
        observed = {tuple(row) for row in coords}
        for row in landmarks.values:
            assert tuple(row) in observed

    def test_medoid_returns_observed_points(self, coords):
        landmarks = build_landmarks(coords, 5, source="medoid", random_state=0)
        observed = {tuple(np.round(row, 12)) for row in coords}
        for row in landmarks.values:
            assert tuple(np.round(row, 12)) in observed

    def test_grid_covers_box(self, coords):
        landmarks = build_landmarks(coords, 9, source="grid", random_state=0)
        # A 3x3 grid over the box spans both dimensions.
        span = landmarks.values.max(axis=0) - landmarks.values.min(axis=0)
        data_span = coords.max(axis=0) - coords.min(axis=0)
        assert (span > 0.5 * data_span).all()

    def test_k_larger_than_n_padded(self, rng):
        small = rng.random((3, 2))
        landmarks = build_landmarks(small, 6, source="kmeans", random_state=0)
        assert landmarks.values.shape == (6, 2)

    def test_smfl_accepts_every_source(self, rng):
        from repro.core import SMFL
        from repro.masking import MissingSpec, inject_missing
        from repro.data import load_dataset

        data = load_dataset("lake", n_rows=80, random_state=0)
        x_missing, mask = inject_missing(
            data.values,
            MissingSpec(missing_rate=0.1, columns=data.attribute_columns),
            random_state=0,
        )
        for source in LANDMARK_SOURCES:
            landmarks = build_landmarks(
                data.spatial, 5, source=source, random_state=0
            )
            model = SMFL(
                rank=5, n_spatial=2, landmarks=landmarks,
                random_state=0, max_iter=30,
            )
            out = model.fit_impute(x_missing, mask)
            assert np.isfinite(out).all()
