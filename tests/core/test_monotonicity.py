"""Property tests for Propositions 5 and 7: the SMFL objective is
non-increasing under the multiplicative update rules.

These are the paper's central theoretical claims; the tests exercise
them on random masked problems, with and without landmarks, with and
without the spatial regularizer.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.objective import total_objective
from repro.core.updates import multiplicative_update_u, multiplicative_update_v
from repro.spatial import laplacian_from_points


def run_iterations(seed: int, *, lam: float, with_landmarks: bool, iters: int = 25):
    rng = np.random.default_rng(seed)
    n, m, k = 15, 5, 3
    x = rng.random((n, m))
    observed = rng.random((n, m)) > 0.25
    x_observed = np.where(observed, x, 0.0)
    u = rng.random((n, k)) + 0.05
    v = rng.random((k, m)) + 0.05
    if lam > 0:
        similarity, degree_mat, laplacian = laplacian_from_points(x[:, :2], 2)
        degree = np.diag(degree_mat)
    else:
        similarity = degree = laplacian = None
    frozen = None
    if with_landmarks:
        frozen = np.zeros(v.shape, dtype=bool)
        frozen[:, :2] = True
    objectives = []
    for _ in range(iters):
        u = multiplicative_update_u(
            x_observed, observed, u, v,
            lam=lam, similarity=similarity, degree=degree,
        )
        v = multiplicative_update_v(x_observed, observed, u, v, frozen_v=frozen)
        objectives.append(
            total_objective(x_observed, u, v, observed, lam=lam, laplacian=laplacian)
        )
    return objectives, u, v, (frozen, v)


class TestProposition5And7:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_nmf_objective_monotone(self, seed):
        objectives, _, _, _ = run_iterations(seed, lam=0.0, with_landmarks=False)
        diffs = np.diff(objectives)
        assert (diffs <= 1e-8 * (1 + np.abs(objectives[:-1]))).all()

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_smf_objective_monotone(self, seed):
        objectives, _, _, _ = run_iterations(seed, lam=0.3, with_landmarks=False)
        diffs = np.diff(objectives)
        assert (diffs <= 1e-8 * (1 + np.abs(objectives[:-1]))).all()

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_smfl_objective_monotone(self, seed):
        objectives, _, _, _ = run_iterations(seed, lam=0.3, with_landmarks=True)
        diffs = np.diff(objectives)
        assert (diffs <= 1e-8 * (1 + np.abs(objectives[:-1]))).all()

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_nonnegativity_preserved(self, seed):
        _, u, v, _ = run_iterations(seed, lam=0.3, with_landmarks=True, iters=10)
        assert (u >= 0).all()
        assert (v >= 0).all()

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_landmark_block_invariant(self, seed):
        rng = np.random.default_rng(seed)
        _, _, v, (frozen, v_out) = run_iterations(
            seed, lam=0.3, with_landmarks=True, iters=10
        )
        # Frozen entries never change; re-run with recorded initial V to check.
        n, m, k = 15, 5, 3
        v0 = np.random.default_rng(seed).random((k, m)) + 0.05
        # The initial V used inside run_iterations is generated after x,
        # observed and u draws; easiest check: re-run and compare frozen block.
        objectives2, _, v2, _ = run_iterations(
            seed, lam=0.3, with_landmarks=True, iters=10
        )
        assert np.array_equal(v_out[:, :2], v2[:, :2])


class TestConvergenceToFixedPoint:
    def test_long_run_stabilises(self):
        objectives, _, _, _ = run_iterations(0, lam=0.1, with_landmarks=True, iters=800)
        # The per-iteration relative decrease should shrink by orders of
        # magnitude between the early and late phase of the run.
        early = (objectives[0] - objectives[10]) / max(objectives[0], 1e-12)
        late = (objectives[-11] - objectives[-1]) / max(objectives[-11], 1e-12)
        assert late < early / 10 + 1e-12

    def test_landmark_variant_not_below_free_minimum(self):
        free, _, _, _ = run_iterations(3, lam=0.1, with_landmarks=False, iters=300)
        constrained, _, _, _ = run_iterations(3, lam=0.1, with_landmarks=True, iters=300)
        # The constrained problem's minimum cannot beat the free one on
        # the same objective (both monotone from the same init).
        assert constrained[-1] >= free[-1] - 1e-8
