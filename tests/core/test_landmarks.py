"""Unit tests for landmark generation and injection (Section III-A)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import LandmarkSet, kmeans_landmarks
from repro.exceptions import ValidationError


class TestLandmarkSet:
    def test_shape_properties(self):
        landmarks = LandmarkSet(values=np.array([[0.1, 0.2], [0.3, 0.4]]))
        assert landmarks.n_landmarks == 2
        assert landmarks.n_spatial == 2

    def test_rejects_negative_values(self):
        with pytest.raises(ValidationError, match="non-negative"):
            LandmarkSet(values=np.array([[-0.1, 0.2]]))

    def test_values_immutable(self):
        landmarks = LandmarkSet(values=np.array([[0.1, 0.2]]))
        with pytest.raises(ValueError):
            landmarks.values[0, 0] = 9.0

    def test_frozen_mask(self):
        landmarks = LandmarkSet(values=np.array([[0.1, 0.2], [0.3, 0.4]]))
        mask = landmarks.frozen_mask((2, 5))
        assert mask[:, :2].all()
        assert not mask[:, 2:].any()

    def test_frozen_mask_row_mismatch(self):
        landmarks = LandmarkSet(values=np.array([[0.1, 0.2]]))
        with pytest.raises(ValidationError, match="rows"):
            landmarks.frozen_mask((3, 5))

    def test_frozen_mask_too_few_columns(self):
        landmarks = LandmarkSet(values=np.array([[0.1, 0.2]]))
        with pytest.raises(ValidationError, match="columns"):
            landmarks.frozen_mask((1, 1))

    def test_inject_formula_9(self, rng):
        landmarks = LandmarkSet(values=np.array([[0.1, 0.2], [0.3, 0.4]]))
        v = rng.random((2, 5))
        injected = landmarks.inject(v)
        assert np.allclose(injected[:, :2], landmarks.values)
        assert np.allclose(injected[:, 2:], v[:, 2:])
        # Original untouched.
        assert not np.allclose(v[:, :2], landmarks.values)


class TestKmeansLandmarks:
    def test_centers_match_kmeans(self, rng):
        pts = np.vstack([
            rng.normal(loc=0.2, scale=0.02, size=(30, 2)),
            rng.normal(loc=0.8, scale=0.02, size=(30, 2)),
        ])
        landmarks = kmeans_landmarks(pts, 2, random_state=0)
        centers = np.sort(landmarks.values[:, 0])
        assert centers[0] == pytest.approx(0.2, abs=0.05)
        assert centers[1] == pytest.approx(0.8, abs=0.05)

    def test_count_matches_rank(self, rng):
        landmarks = kmeans_landmarks(rng.random((50, 2)), 7, random_state=0)
        assert landmarks.n_landmarks == 7

    def test_handles_missing_spatial_cells(self, rng):
        pts = rng.random((40, 2))
        pts[3, 0] = np.nan
        landmarks = kmeans_landmarks(pts, 3, random_state=0)
        assert np.isfinite(landmarks.values).all()

    def test_deterministic(self, rng):
        pts = rng.random((40, 2))
        a = kmeans_landmarks(pts, 4, random_state=11)
        b = kmeans_landmarks(pts, 4, random_state=11)
        assert np.allclose(a.values, b.values)

    def test_landmarks_inside_data_hull_boxwise(self, rng):
        pts = rng.random((60, 2))
        landmarks = kmeans_landmarks(pts, 5, random_state=0)
        assert (landmarks.values >= pts.min(axis=0) - 1e-9).all()
        assert (landmarks.values <= pts.max(axis=0) + 1e-9).all()
