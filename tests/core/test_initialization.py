"""Unit tests for factor initialisation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.initialization import INIT_STRATEGIES, init_factors
from repro.exceptions import ValidationError


@pytest.fixture
def masked_problem(rng):
    x = rng.random((20, 6))
    observed = rng.random((20, 6)) > 0.2
    return np.where(observed, x, 0.0), observed


class TestInitFactors:
    @pytest.mark.parametrize("strategy", INIT_STRATEGIES)
    def test_shapes_and_positivity(self, masked_problem, strategy):
        x_observed, observed = masked_problem
        u, v = init_factors(
            x_observed, observed, 4, strategy=strategy, random_state=0
        )
        assert u.shape == (20, 4)
        assert v.shape == (4, 6)
        assert (u > 0).all()
        assert (v > 0).all()

    def test_random_scale_matches_data(self, masked_problem):
        x_observed, observed = masked_problem
        u, v = init_factors(x_observed, observed, 4, random_state=0)
        product_mean = float((u @ v).mean())
        data_mean = float(x_observed[observed].mean())
        assert 0.2 * data_mean < product_mean < 5 * data_mean

    def test_random_deterministic(self, masked_problem):
        x_observed, observed = masked_problem
        a = init_factors(x_observed, observed, 3, random_state=9)
        b = init_factors(x_observed, observed, 3, random_state=9)
        assert np.allclose(a[0], b[0])
        assert np.allclose(a[1], b[1])

    def test_nndsvd_deterministic_without_seed(self, masked_problem):
        x_observed, observed = masked_problem
        a = init_factors(x_observed, observed, 3, strategy="nndsvd")
        b = init_factors(x_observed, observed, 3, strategy="nndsvd")
        assert np.allclose(a[0], b[0])

    def test_nndsvd_reconstruction_reasonable(self, rng):
        u_true = rng.random((15, 2))
        v_true = rng.random((2, 5))
        x = u_true @ v_true
        observed = np.ones((15, 5), dtype=bool)
        u, v = init_factors(x, observed, 2, strategy="nndsvd")
        relative = np.linalg.norm(x - u @ v) / np.linalg.norm(x)
        assert relative < 0.5

    def test_unknown_strategy(self, masked_problem):
        x_observed, observed = masked_problem
        with pytest.raises(ValidationError, match="unknown init"):
            init_factors(x_observed, observed, 3, strategy="magic")

    def test_strategies_include_nndsvd_variants(self):
        assert "nndsvd" in INIT_STRATEGIES
        assert "nndsvda" in INIT_STRATEGIES

    def test_nndsvda_fills_with_data_mean(self, masked_problem):
        # NIMFA's "average" variant: zero/near-zero entries become the
        # observed data mean (denser start), not the tiny nndsvd floor.
        x_observed, observed = masked_problem
        u_basic, v_basic = init_factors(x_observed, observed, 4, strategy="nndsvd")
        u_avg, v_avg = init_factors(x_observed, observed, 4, strategy="nndsvda")
        mean = float(x_observed.mean())
        floor = max(mean * 1e-2, 1e-6)
        fill = max(mean, 1e-6)
        # The average variant filled some (near-zero) entries with the
        # data mean, and anything it filled was floored in plain nndsvd.
        assert (u_avg == fill).any()
        assert np.all(u_basic[u_avg == fill] == floor)
        # The strictly-positive SVD skeleton agrees across variants.
        large = u_basic > floor
        assert np.array_equal(u_basic[large], u_avg[large])
        assert (v_avg > 0).all()

    def test_nndsvda_deterministic(self, masked_problem):
        x_observed, observed = masked_problem
        a = init_factors(x_observed, observed, 3, strategy="nndsvda")
        b = init_factors(x_observed, observed, 3, strategy="nndsvda")
        assert np.array_equal(a[0], b[0])
        assert np.array_equal(a[1], b[1])

    def test_nndsvd_usable_by_single_and_batched_fits(self):
        # The init seam feeds both entry points: a model constructed
        # with init="nndsvd" runs identically looped or stacked.
        from repro.core import MaskedNMF
        from repro.core.batched_fit import fit_models_batched

        rng = np.random.default_rng(0)
        x = rng.random((20, 8)) * 3.0
        jobs, loops = [], []
        for seed in range(3):
            noisy = x + rng.random((20, 8)) * 0.1
            for target in (jobs, loops):
                target.append(
                    (
                        MaskedNMF(
                            rank=3, max_iter=15, tol=0.0,
                            random_state=seed, init="nndsvd",
                        ),
                        noisy,
                        None,
                    )
                )
        fit_models_batched(jobs)
        for model, data, _ in loops:
            model.fit(data)
        for (mb, _, _), (ml, _, _) in zip(jobs, loops):
            assert np.array_equal(mb.u_, ml.u_)
            assert np.array_equal(mb.v_, ml.v_)
