"""Unit tests for the SMFL objective components."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import masked_frobenius_sq, smoothness_penalty, total_objective
from repro.exceptions import ValidationError
from repro.spatial import laplacian_from_points


class TestMaskedFrobenius:
    def test_full_mask_is_plain_frobenius(self, rng):
        x = rng.random((6, 4))
        u = rng.random((6, 2))
        v = rng.random((2, 4))
        observed = np.ones((6, 4), dtype=bool)
        expected = float(np.linalg.norm(x - u @ v) ** 2)
        assert masked_frobenius_sq(x, u, v, observed) == pytest.approx(expected)

    def test_unobserved_cells_ignored(self, rng):
        x = rng.random((5, 3))
        u = rng.random((5, 2))
        v = rng.random((2, 3))
        observed = np.ones((5, 3), dtype=bool)
        observed[0, 0] = False
        base = masked_frobenius_sq(x, u, v, observed)
        x2 = x.copy()
        x2[0, 0] = 999.0  # must not affect the objective
        assert masked_frobenius_sq(x2, u, v, observed) == pytest.approx(base)

    def test_zero_for_exact_factorization(self, rng):
        u = rng.random((5, 2))
        v = rng.random((2, 3))
        x = u @ v
        observed = np.ones((5, 3), dtype=bool)
        assert masked_frobenius_sq(x, u, v, observed) == pytest.approx(0.0)

    def test_shape_checks(self, rng):
        with pytest.raises(ValidationError, match="chain"):
            masked_frobenius_sq(
                rng.random((4, 3)), rng.random((4, 2)), rng.random((3, 3)),
                np.ones((4, 3), dtype=bool),
            )
        with pytest.raises(ValidationError, match="but X is"):
            masked_frobenius_sq(
                rng.random((4, 3)), rng.random((5, 2)), rng.random((2, 3)),
                np.ones((4, 3), dtype=bool),
            )


class TestSmoothnessPenalty:
    def test_matches_pairwise_form(self, rng):
        pts = rng.random((10, 2))
        similarity, _, laplacian = laplacian_from_points(pts, 2)
        u = rng.random((10, 3))
        expected = 0.5 * sum(
            similarity[i, j] * np.sum((u[i] - u[j]) ** 2)
            for i in range(10)
            for j in range(10)
        )
        assert smoothness_penalty(u, laplacian) == pytest.approx(expected)

    def test_zero_for_constant_rows(self, rng):
        pts = rng.random((8, 2))
        _, _, laplacian = laplacian_from_points(pts, 2)
        u = np.ones((8, 3))
        assert smoothness_penalty(u, laplacian) == pytest.approx(0.0)

    def test_never_negative(self, rng):
        pts = rng.random((8, 2))
        _, _, laplacian = laplacian_from_points(pts, 2)
        for _ in range(5):
            assert smoothness_penalty(rng.random((8, 2)), laplacian) >= 0.0

    def test_shape_check(self, rng):
        with pytest.raises(ValidationError, match="laplacian"):
            smoothness_penalty(rng.random((5, 2)), rng.random((4, 4)))


class TestTotalObjective:
    def test_reduces_to_nmf_when_lam_zero(self, rng):
        x = rng.random((6, 4))
        u = rng.random((6, 2))
        v = rng.random((2, 4))
        observed = rng.random((6, 4)) > 0.2
        assert total_objective(x, u, v, observed) == pytest.approx(
            masked_frobenius_sq(x, u, v, observed)
        )

    def test_adds_weighted_penalty(self, rng):
        x = rng.random((8, 4))
        u = rng.random((8, 3))
        v = rng.random((3, 4))
        observed = np.ones((8, 4), dtype=bool)
        _, _, laplacian = laplacian_from_points(rng.random((8, 2)), 2)
        total = total_objective(x, u, v, observed, lam=0.7, laplacian=laplacian)
        assert total == pytest.approx(
            masked_frobenius_sq(x, u, v, observed)
            + 0.7 * smoothness_penalty(u, laplacian)
        )

    def test_lam_without_laplacian_raises(self, rng):
        x = rng.random((4, 3))
        u = rng.random((4, 2))
        v = rng.random((2, 3))
        with pytest.raises(ValidationError, match="laplacian"):
            total_objective(x, u, v, np.ones((4, 3), dtype=bool), lam=0.5)
