"""Unit tests for MaskedNMF, SMF and SMFL (model-level behaviour)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MaskedNMF, SMF, SMFL, LandmarkSet
from repro.exceptions import NotFittedError, ValidationError
from repro.metrics import rms_over_mask


class TestMaskedNMF:
    def test_fit_impute_fills_only_missing(self, tiny_trial):
        dataset, x_missing, mask = tiny_trial
        model = MaskedNMF(rank=4, random_state=0, max_iter=100)
        imputed = model.fit_impute(x_missing, mask)
        rows, cols = mask.indices()
        assert np.allclose(imputed[rows, cols], x_missing[rows, cols])
        assert np.isfinite(imputed).all()

    def test_nan_input_without_mask(self, tiny_dataset):
        x = tiny_dataset.values.copy()
        x[0, 3] = np.nan
        model = MaskedNMF(rank=3, random_state=0, max_iter=50)
        imputed = model.fit_impute(x)
        assert np.isfinite(imputed[0, 3])

    def test_methods_require_fit(self):
        model = MaskedNMF(rank=3)
        with pytest.raises(NotFittedError):
            model.reconstruct()
        with pytest.raises(NotFittedError):
            model.impute()
        with pytest.raises(NotFittedError):
            model.result()

    def test_factors_nonnegative(self, tiny_trial):
        _, x_missing, mask = tiny_trial
        model = MaskedNMF(rank=4, random_state=0, max_iter=60).fit(x_missing, mask)
        assert (model.u_ >= 0).all()
        assert (model.v_ >= 0).all()

    def test_rank_validation_against_data(self, rng):
        x = rng.random((5, 4))
        with pytest.raises(ValidationError, match="exceeds"):
            MaskedNMF(rank=5).fit(x)

    def test_rejects_negative_observed_values(self, rng):
        x = rng.random((10, 4)) - 2.0
        with pytest.raises(ValidationError, match="non-negative"):
            MaskedNMF(rank=2).fit(x)

    def test_rejects_nan_at_observed_cells(self, rng):
        x = rng.random((6, 4))
        x[0, 0] = np.nan
        mask = np.ones((6, 4), dtype=bool)  # claims everything observed
        with pytest.raises(ValidationError, match="NaN"):
            MaskedNMF(rank=2).fit(x, mask)

    def test_unknown_update_rule(self):
        with pytest.raises(ValidationError, match="update_rule"):
            MaskedNMF(rank=2, update_rule="newton")

    def test_gradient_rule_runs(self, tiny_trial):
        _, x_missing, mask = tiny_trial
        model = MaskedNMF(
            rank=3, update_rule="gradient", learning_rate=1e-3,
            random_state=0, max_iter=50,
        )
        imputed = model.fit_impute(x_missing, mask)
        assert np.isfinite(imputed).all()

    def test_objective_history_monotone(self, tiny_trial):
        _, x_missing, mask = tiny_trial
        model = MaskedNMF(rank=4, random_state=0, max_iter=80).fit(x_missing, mask)
        history = np.array(model.objective_history_)
        assert (np.diff(history) <= 1e-8 * (1 + history[:-1])).all()

    def test_result_summary(self, tiny_trial):
        _, x_missing, mask = tiny_trial
        model = MaskedNMF(rank=3, random_state=0, max_iter=30).fit(x_missing, mask)
        result = model.result()
        assert result.n_iter == model.n_iter_
        assert result.final_objective == model.objective_history_[-1]

    def test_clip_to_observed(self, tiny_trial):
        _, x_missing, mask = tiny_trial
        model = MaskedNMF(rank=4, random_state=0, max_iter=60, clip_to_observed=True)
        imputed = model.fit_impute(x_missing, mask)
        for j in range(x_missing.shape[1]):
            observed_col = x_missing[mask.observed[:, j], j]
            if observed_col.size:
                assert imputed[:, j].max() <= observed_col.max() + 1e-12
                assert imputed[:, j].min() >= observed_col.min() - 1e-12


class TestSMF:
    def test_graph_built_on_fit(self, tiny_trial):
        _, x_missing, mask = tiny_trial
        model = SMF(rank=4, n_spatial=2, random_state=0, max_iter=40)
        model.fit(x_missing, mask)
        n = x_missing.shape[0]
        assert model.similarity_.shape == (n, n)
        assert model.degree_.shape == (n,)
        assert model.laplacian_.shape == (n, n)

    def test_lam_zero_matches_nmf_update_path(self, tiny_trial):
        _, x_missing, mask = tiny_trial
        smf = SMF(rank=3, n_spatial=2, lam=0.0, random_state=0, max_iter=40)
        nmf = MaskedNMF(rank=3, random_state=0, max_iter=40)
        a = smf.fit_impute(x_missing, mask)
        b = nmf.fit_impute(x_missing, mask)
        assert np.allclose(a, b)

    def test_feature_locations_shape(self, tiny_trial):
        _, x_missing, mask = tiny_trial
        model = SMF(rank=4, n_spatial=2, random_state=0, max_iter=40)
        model.fit(x_missing, mask)
        assert model.feature_locations().shape == (4, 2)

    def test_feature_locations_requires_fit(self):
        with pytest.raises(NotFittedError):
            SMF(rank=3, n_spatial=2).feature_locations()

    def test_gradient_variant(self, tiny_trial):
        _, x_missing, mask = tiny_trial
        model = SMF(
            rank=3, n_spatial=2, update_rule="gradient",
            learning_rate=1e-3, random_state=0, max_iter=50,
        )
        imputed = model.fit_impute(x_missing, mask)
        assert np.isfinite(imputed).all()

    def test_invalid_lam(self):
        with pytest.raises(ValidationError):
            SMF(rank=3, lam=-0.1)


class TestSMFL:
    def test_landmarks_frozen_through_fit(self, tiny_trial):
        _, x_missing, mask = tiny_trial
        model = SMFL(rank=4, n_spatial=2, random_state=0, max_iter=60)
        model.fit(x_missing, mask)
        assert model.landmarks_ is not None
        assert np.allclose(model.feature_locations(), model.landmarks_.values)

    def test_landmarks_inside_observation_box(self, tiny_trial):
        dataset, x_missing, mask = tiny_trial
        model = SMFL(rank=4, n_spatial=2, random_state=0, max_iter=60)
        model.fit(x_missing, mask)
        spatial = dataset.spatial
        locations = model.feature_locations()
        assert (locations >= spatial.min(axis=0) - 1e-9).all()
        assert (locations <= spatial.max(axis=0) + 1e-9).all()

    def test_custom_landmarks_used(self, tiny_trial):
        _, x_missing, mask = tiny_trial
        custom = LandmarkSet(values=np.full((4, 2), 0.5))
        model = SMFL(
            rank=4, n_spatial=2, landmarks=custom, random_state=0, max_iter=30
        )
        model.fit(x_missing, mask)
        assert np.allclose(model.feature_locations(), 0.5)

    def test_landmark_init_default(self):
        model = SMFL(rank=3, n_spatial=2)
        assert model.init == "landmark"

    def test_random_init_override(self, tiny_trial):
        _, x_missing, mask = tiny_trial
        model = SMFL(rank=3, n_spatial=2, init="random", random_state=0, max_iter=30)
        imputed = model.fit_impute(x_missing, mask)
        assert np.isfinite(imputed).all()

    def test_beats_nmf_on_spatial_data(self, tiny_trial):
        dataset, x_missing, mask = tiny_trial
        nmf = MaskedNMF(rank=4, random_state=0)
        smfl = SMFL(rank=4, n_spatial=2, random_state=0)
        rms_nmf = rms_over_mask(nmf.fit_impute(x_missing, mask), dataset.values, mask)
        rms_smfl = rms_over_mask(smfl.fit_impute(x_missing, mask), dataset.values, mask)
        assert rms_smfl < rms_nmf

    def test_refit_rebuilds_landmarks(self, tiny_trial, rng):
        _, x_missing, mask = tiny_trial
        model = SMFL(rank=4, n_spatial=2, random_state=0, max_iter=20)
        model.fit(x_missing, mask)
        first = model.landmarks_.values.copy()
        shifted = x_missing.copy()
        shifted[:, :2] = np.clip(shifted[:, :2] * 0.5, 0, 1)
        model.fit(shifted, mask)
        assert not np.allclose(model.landmarks_.values, first)
