"""Unit tests for the multiplicative / gradient update kernels."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.updates import (
    gradient_update_u,
    gradient_update_v,
    multiplicative_update_u,
    multiplicative_update_v,
)
from repro.spatial import laplacian_from_points


@pytest.fixture
def problem(rng):
    n, m, k = 12, 5, 3
    u_true = rng.random((n, k))
    v_true = rng.random((k, m))
    x = u_true @ v_true
    observed = rng.random((n, m)) > 0.2
    x_observed = np.where(observed, x, 0.0)
    u0 = rng.random((n, k)) + 0.1
    v0 = rng.random((k, m)) + 0.1
    return x_observed, observed, u0, v0


class TestMultiplicativeUpdates:
    def test_preserves_nonnegativity(self, problem):
        x_observed, observed, u, v = problem
        for _ in range(10):
            u = multiplicative_update_u(x_observed, observed, u, v)
            v = multiplicative_update_v(x_observed, observed, u, v)
        assert (u >= 0).all() and (v >= 0).all()

    def test_inputs_not_mutated(self, problem):
        x_observed, observed, u, v = problem
        u_copy, v_copy = u.copy(), v.copy()
        multiplicative_update_u(x_observed, observed, u, v)
        multiplicative_update_v(x_observed, observed, u, v)
        assert np.array_equal(u, u_copy)
        assert np.array_equal(v, v_copy)

    def test_fixed_point_at_exact_factorization(self, rng):
        u = rng.random((8, 2)) + 0.1
        v = rng.random((2, 4)) + 0.1
        x = u @ v
        observed = np.ones((8, 4), dtype=bool)
        u_next = multiplicative_update_u(x, observed, u, v)
        v_next = multiplicative_update_v(x, observed, u, v)
        assert np.allclose(u_next, u, rtol=1e-6)
        assert np.allclose(v_next, v, rtol=1e-6)

    def test_zero_numerator_drives_to_zero(self):
        # A column of X that is all zero forces the matching V column down.
        x = np.zeros((4, 2))
        observed = np.ones((4, 2), dtype=bool)
        u = np.ones((4, 2))
        v = np.ones((2, 2))
        v_next = multiplicative_update_v(x, observed, u, v)
        assert (v_next < 1e-6).all()

    def test_graph_terms_require_inputs(self, problem):
        x_observed, observed, u, v = problem
        with pytest.raises(ValueError, match="similarity and degree"):
            multiplicative_update_u(x_observed, observed, u, v, lam=0.5)

    def test_frozen_cells_kept(self, problem):
        x_observed, observed, u, v = problem
        frozen = np.zeros(v.shape, dtype=bool)
        frozen[:, :2] = True
        v_next = multiplicative_update_v(
            x_observed, observed, u, v, frozen_v=frozen
        )
        assert np.array_equal(v_next[:, :2], v[:, :2])
        assert not np.allclose(v_next[:, 2:], v[:, 2:])

    def test_graph_terms_change_update(self, problem, rng):
        x_observed, observed, u, v = problem
        similarity, degree_mat, _ = laplacian_from_points(
            rng.random((u.shape[0], 2)), 2
        )
        degree = np.diag(degree_mat)
        plain = multiplicative_update_u(x_observed, observed, u, v)
        regularized = multiplicative_update_u(
            x_observed, observed, u, v,
            lam=1.0, similarity=similarity, degree=degree,
        )
        assert not np.allclose(plain, regularized)


class TestGradientUpdates:
    def test_projection_to_nonneg(self, problem):
        x_observed, observed, u, v = problem
        u_next = gradient_update_u(
            x_observed, observed, u, v, learning_rate=10.0
        )
        assert (u_next >= 0).all()

    def test_descent_direction_small_step(self, problem):
        from repro.core.objective import masked_frobenius_sq

        x_observed, observed, u, v = problem
        before = masked_frobenius_sq(x_observed, u, v, observed)
        u_next = gradient_update_u(
            x_observed, observed, u, v, learning_rate=1e-4
        )
        after = masked_frobenius_sq(x_observed, u_next, v, observed)
        assert after <= before

    def test_lam_requires_laplacian(self, problem):
        x_observed, observed, u, v = problem
        with pytest.raises(ValueError, match="laplacian"):
            gradient_update_u(
                x_observed, observed, u, v, learning_rate=1e-3, lam=0.5
            )

    def test_frozen_cells_kept(self, problem):
        x_observed, observed, u, v = problem
        frozen = np.zeros(v.shape, dtype=bool)
        frozen[:, 0] = True
        v_next = gradient_update_v(
            x_observed, observed, u, v, learning_rate=1e-2, frozen_v=frozen
        )
        assert np.array_equal(v_next[:, 0], v[:, 0])


class TestGuardedDivide:
    """The shared division policy every update rule goes through."""

    def test_matches_reference_expression_bitwise(self, rng):
        from repro.core.updates import EPSILON, guarded_divide

        num = rng.random((6, 4))
        den = rng.random((6, 4))
        assert np.array_equal(guarded_divide(num, den), num / (den + EPSILON))

    def test_out_buffer_matches_allocating_form(self, rng):
        from repro.core.updates import guarded_divide

        num = rng.random((6, 4))
        den = rng.random((6, 4))
        expected = guarded_divide(num, den)
        out = np.empty_like(num)
        result = guarded_divide(num, den, out=out)
        assert result is out
        assert np.array_equal(out, expected)

    def test_out_may_alias_numerator(self, rng):
        from repro.core.updates import guarded_divide

        num = rng.random((6, 4))
        den = rng.random((6, 4))
        expected = guarded_divide(num, den)
        scratch = num.copy()
        guarded_divide(scratch, den, out=scratch)
        assert np.array_equal(scratch, expected)

    def test_denominator_scratch_floors_in_place(self, rng):
        from repro.core.updates import EPSILON, guarded_divide

        num = rng.random((6, 4))
        den = rng.random((6, 4))
        expected = guarded_divide(num, den)
        scratch = den.copy()
        out = np.empty_like(num)
        guarded_divide(num, scratch, out=out, denominator_is_scratch=True)
        assert np.array_equal(out, expected)
        assert np.array_equal(scratch, den + EPSILON)

    def test_zero_denominator_never_raises(self):
        from repro.core.updates import guarded_divide

        num = np.ones((2, 2))
        den = np.zeros((2, 2))
        with np.errstate(divide="raise", invalid="raise"):
            out = guarded_divide(num, den)
        assert np.isfinite(out).all()
