"""Unit tests for the convergence monitor."""

from __future__ import annotations

import warnings

import pytest

from repro.core import ConvergenceMonitor
from repro.exceptions import ConvergenceWarning, ValidationError


class TestConvergenceMonitor:
    def test_runs_until_budget(self):
        monitor = ConvergenceMonitor(max_iter=5, tol=0.0)
        steps = 0
        while monitor.keep_going():
            steps += 1
            monitor.record(1.0 / steps)
        assert steps == 5
        assert not monitor.converged

    def test_declares_convergence_on_small_decrease(self):
        monitor = ConvergenceMonitor(max_iter=100, tol=1e-3)
        monitor.record(1.0)
        monitor.record(0.9999)  # relative decrease 1e-4 < tol
        assert monitor.converged
        assert not monitor.keep_going()

    def test_increase_never_converges(self):
        # The gradient rule can overshoot; stopping on an increase would
        # freeze the solver at its worst iterate.  Increases are counted
        # instead and surfaced to the telemetry layer.
        monitor = ConvergenceMonitor(max_iter=10, tol=1e-6)
        monitor.record(1.0)
        monitor.record(1.5)
        assert not monitor.converged
        assert monitor.n_increases == 1
        assert monitor.keep_going()

    def test_increase_count_resets(self):
        monitor = ConvergenceMonitor(max_iter=10, tol=1e-6)
        monitor.record(1.0)
        monitor.record(1.5)
        monitor.record(1.2)
        monitor.record(1.3)
        assert monitor.n_increases == 2
        monitor.reset()
        assert monitor.n_increases == 0

    def test_recovery_after_increase_still_converges(self):
        # A later genuine small decrease must still stop the solver.
        monitor = ConvergenceMonitor(max_iter=10, tol=1e-3)
        monitor.record(1.0)
        monitor.record(1.5)
        monitor.record(0.8)
        monitor.record(0.7999999)
        assert monitor.converged

    def test_keeps_going_on_large_decrease(self):
        monitor = ConvergenceMonitor(max_iter=10, tol=1e-3)
        monitor.record(1.0)
        monitor.record(0.5)
        assert not monitor.converged
        assert monitor.keep_going()

    def test_history_recorded(self):
        monitor = ConvergenceMonitor(max_iter=10, tol=0.0)
        for value in (3.0, 2.0, 1.0):
            monitor.record(value)
        assert monitor.history == [3.0, 2.0, 1.0]
        assert monitor.n_iter == 3

    def test_reset(self):
        monitor = ConvergenceMonitor(max_iter=10, tol=1.0)
        monitor.record(1.0)
        monitor.record(0.99)
        assert monitor.converged
        monitor.reset()
        assert not monitor.converged
        assert monitor.history == []

    def test_budget_warning(self):
        monitor = ConvergenceMonitor(max_iter=1, tol=0.0, warn_on_budget=True)
        monitor.record(1.0)
        with pytest.warns(ConvergenceWarning):
            assert not monitor.keep_going()

    def test_no_warning_by_default(self):
        monitor = ConvergenceMonitor(max_iter=1, tol=0.0)
        monitor.record(1.0)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert not monitor.keep_going()

    def test_validation(self):
        with pytest.raises(ValidationError):
            ConvergenceMonitor(max_iter=-1)
        with pytest.raises(ValidationError):
            ConvergenceMonitor(tol=-1.0)

    def test_zero_budget_is_legal(self):
        # A zero iteration budget means "run nothing", not an error;
        # the engine returns the initial state with an empty history.
        monitor = ConvergenceMonitor(max_iter=0)
        assert not monitor.keep_going()
        assert monitor.history == []

    def test_zero_tol_requires_strict_increase_to_stop(self):
        monitor = ConvergenceMonitor(max_iter=10, tol=0.0)
        monitor.record(1.0)
        monitor.record(0.999999)
        assert not monitor.converged

    def test_increase_counter_is_cumulative_for_the_whole_fit(self):
        # Regression: the counter must never reset on a later decrease.
        # The batched engine keeps one monitor per stacked fit and
        # relies on the count matching the looped fit whatever order
        # the increases arrived in.
        monitor = ConvergenceMonitor(max_iter=20, tol=0.0)
        for value in (1.0, 1.5, 0.8, 1.2, 0.6, 0.5, 0.9):
            monitor.record(value)
        assert monitor.n_increases == 3
        assert not monitor.converged

    def test_nan_objective_counts_as_increase_never_convergence(self):
        # "not a decrease" routes NaN into the increase branch: a
        # diverging gradient fit must keep its increase tally rather
        # than silently dropping non-finite evaluations.
        monitor = ConvergenceMonitor(max_iter=10, tol=1e-3)
        monitor.record(1.0)
        monitor.record(float("nan"))
        assert not monitor.converged
        assert monitor.n_increases == 1

    def test_increase_counting_identical_under_batched_dropout(self):
        # Two monitors fed the same objective sequence agree exactly -
        # the per-fit contract the batched dropout path depends on.
        values = [5.0, 4.0, 4.5, 3.0, 3.5, 2.0]
        solo = ConvergenceMonitor(max_iter=10, tol=0.0)
        stacked = ConvergenceMonitor(max_iter=10, tol=0.0)
        for value in values:
            solo.record(value)
            stacked.record(value)
        assert solo.n_increases == stacked.n_increases == 2
        assert solo.history == stacked.history
