"""Setup shim enabling legacy editable installs (`pip install -e .`)
on environments without the `wheel` package (PEP 660 editable builds
need `bdist_wheel`; `setup.py develop` does not)."""

from setuptools import setup

setup()
