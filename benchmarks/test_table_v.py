"""Benchmark: regenerate Table V (imputation RMS, spatial info missing).

Paper's Table V shape: every method degrades versus Table IV because
the spatial information itself is incomplete; SMFL stays ahead in the
paper, while this reproduction records a partial deviation (see
EXPERIMENTS.md) - regression-based Iterative is the hardest baseline
on the synthetic stand-ins.
"""

from __future__ import annotations

from repro.experiments.tables import table_v

from conftest import print_result_table

METHODS = ("knn", "dlm", "iterative", "nmf", "smf", "smfl")


def test_table_v_benchmark(benchmark):
    result = benchmark.pedantic(
        lambda: table_v(methods=METHODS, n_runs=1, fast=True),
        rounds=1, iterations=1,
    )
    print_result_table("Table V (reduced scale, 1 run)", result)
    for dataset, row in result.items():
        assert all(v > 0 for v in row.values()), dataset
