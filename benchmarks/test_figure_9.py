"""Benchmark: regenerate Figure 9 (runtime vs number of tuples).

Paper's Figure 9 shape: SMFL is cheaper than neighbour/GAN/statistics
methods and slightly cheaper than SMF (the frozen landmark block skips
its update); runtimes grow with the tuple count.

Timing here comes from engine telemetry: every iterative method's
:class:`~repro.engine.FitReport` carries its own per-iteration wall
times, so neither this benchmark nor ``figure_9`` wraps ``fit`` in an
external stopwatch.
"""

from __future__ import annotations

import numpy as np

from repro.core.smf import SMF
from repro.core.smfl import SMFL
from repro.experiments import figure_9
from repro.experiments.reporting import format_fit_report

from conftest import print_result_table

METHODS = ("knne", "dlm", "softimpute", "iterative", "smf", "smfl")


def test_figure_9_benchmark(benchmark):
    result = benchmark.pedantic(
        lambda: figure_9(
            datasets=("lake",), row_counts=(150, 300),
            methods=METHODS, fast=False,
        ),
        rounds=1, iterations=1,
    )
    print_result_table("Figure 9: seconds vs #tuples (lake)", result)
    for series in result.values():
        assert all(v > 0 for v in series.values())


def test_smfl_iterations_cheaper_than_smf(benchmark, lake_trial):
    """Section IV-E: telemetry shows SMFL's per-iteration cost <= SMF's."""
    data, x_missing, mask = lake_trial

    def fit_both():
        smf = SMF(rank=6, n_spatial=data.n_spatial, max_iter=100, random_state=0)
        smfl = SMFL(rank=6, n_spatial=data.n_spatial, max_iter=100, random_state=0)
        smf.fit(x_missing, mask)
        smfl.fit(x_missing, mask)
        return smf.fit_report_, smfl.fit_report_

    smf_report, smfl_report = benchmark.pedantic(fit_both, rounds=1, iterations=1)
    print(format_fit_report(smf_report, title="SMF telemetry"))      # noqa: T201
    print(format_fit_report(smfl_report, title="SMFL telemetry"))    # noqa: T201
    assert smf_report.wall_times and smfl_report.wall_times
    assert smfl_report.landmark_block_intact is True
    # The Figure 9 claim, from telemetry alone.  Medians over the 100
    # per-iteration wall times shrug off scheduler/GC outliers; the
    # 1.3x headroom covers the remaining noise on sub-100us iterations
    # (the saved landmark-column work is small at lake's M=7, L=2).
    smf_iter = float(np.median(smf_report.wall_times))
    smfl_iter = float(np.median(smfl_report.wall_times))
    assert smfl_iter <= smf_iter * 1.3
