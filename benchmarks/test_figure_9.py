"""Benchmark: regenerate Figure 9 (runtime vs number of tuples).

Paper's Figure 9 shape: SMFL is cheaper than neighbour/GAN/statistics
methods and slightly cheaper than SMF (the frozen landmark block skips
its update); runtimes grow with the tuple count.
"""

from __future__ import annotations

from repro.experiments import figure_9

from conftest import print_result_table

METHODS = ("knne", "dlm", "softimpute", "iterative", "smf", "smfl")


def test_figure_9_benchmark(benchmark):
    result = benchmark.pedantic(
        lambda: figure_9(
            datasets=("lake",), row_counts=(150, 300),
            methods=METHODS, fast=False,
        ),
        rounds=1, iterations=1,
    )
    print_result_table("Figure 9: seconds vs #tuples (lake)", result)
    for series in result.values():
        assert all(v > 0 for v in series.values())
