"""Micro-benchmarks for the library's hot kernels (Proposition 1).

The paper's complexity analysis: the multiplicative updates dominate at
O(NMK) per iteration; the similarity matrix costs O(N^2 L); K-means
costs O(t2 K N L).  These benchmarks pin the per-call costs so
regressions in the kernels are visible, and the scaling benchmark
checks the SMFL-faster-than-SMF claim at equal iteration counts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering import KMeans
from repro.core import SMF, SMFL
from repro.core.updates import multiplicative_update_u, multiplicative_update_v
from repro.spatial import knn_similarity_matrix


@pytest.fixture(scope="module")
def update_problem():
    rng = np.random.default_rng(0)
    n, m, k = 500, 7, 6
    x = rng.random((n, m))
    observed = rng.random((n, m)) > 0.1
    x_observed = np.where(observed, x, 0.0)
    u = rng.random((n, k)) + 0.1
    v = rng.random((k, m)) + 0.1
    return x_observed, observed, u, v


def test_multiplicative_update_u_kernel(benchmark, update_problem):
    x_observed, observed, u, v = update_problem
    result = benchmark(
        multiplicative_update_u, x_observed, observed, u, v
    )
    assert result.shape == u.shape


def test_multiplicative_update_v_kernel(benchmark, update_problem):
    x_observed, observed, u, v = update_problem
    result = benchmark(
        multiplicative_update_v, x_observed, observed, u, v
    )
    assert result.shape == v.shape


def test_similarity_matrix_kernel(benchmark, lake_trial):
    data, _, _ = lake_trial
    result = benchmark(knn_similarity_matrix, data.spatial, 3)
    assert result.shape == (data.n_rows, data.n_rows)


def test_kmeans_kernel(benchmark, lake_trial):
    data, _, _ = lake_trial
    model = benchmark(
        lambda: KMeans(n_clusters=6, random_state=0).fit(data.spatial)
    )
    assert model.centers_.shape == (6, 2)


def test_smfl_not_slower_than_smf(benchmark, lake_trial):
    """Section IV-E: the frozen landmark block saves V-update work, so
    SMFL's per-fit cost at a fixed iteration budget stays within a
    small factor of SMF's (K-means included)."""
    import time

    _, x_missing, mask = lake_trial

    def fit_both():
        start = time.perf_counter()
        SMF(rank=6, n_spatial=2, max_iter=100, tol=0, random_state=0).fit(
            x_missing, mask
        )
        smf_seconds = time.perf_counter() - start
        start = time.perf_counter()
        SMFL(rank=6, n_spatial=2, max_iter=100, tol=0, random_state=0).fit(
            x_missing, mask
        )
        smfl_seconds = time.perf_counter() - start
        return smf_seconds, smfl_seconds

    smf_seconds, smfl_seconds = benchmark.pedantic(fit_both, rounds=3, iterations=1)
    assert smfl_seconds < 1.5 * smf_seconds
