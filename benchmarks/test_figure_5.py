"""Benchmark: regenerate Figure 5 (learned feature locations).

Paper's Figure 5: features learned by SMF (gradient and multiplicative
variants) drift far outside the observation region, while SMFL's
landmark-anchored features sit exactly on K-means centers inside it.
The quantitative form asserted here: SMFL's inside-bounding-box
fraction is 1.0 and at least matches both SMF variants.
"""

from __future__ import annotations

from repro.experiments import figure_5


def test_figure_5_benchmark(benchmark):
    result = benchmark.pedantic(
        lambda: figure_5(rank=5, seed=0, fast=True),
        rounds=1, iterations=1,
    )
    inside = {
        label: result[f"{label}_inside_fraction"]
        for label in ("smf_gd", "smf_multi", "smfl")
    }
    print(f"\nFigure 5 inside-observation-box fractions: {inside}\n")  # noqa: T201
    assert result["smfl_inside_fraction"] == 1.0
    assert result["smfl_inside_fraction"] >= result["smf_gd_inside_fraction"]
    assert result["smfl_inside_fraction"] >= result["smf_multi_inside_fraction"]
