"""Benchmark: regenerate Figure 6 (varying the regularization lambda).

Paper's Figure 6 shape: RMS vs lambda is U-shaped - too small a lambda
ignores spatial smoothness, too large over-smooths; SMFL tracks below
SMF across most of the sweep.
"""

from __future__ import annotations

from repro.experiments import figure_6

from conftest import print_result_table


def test_figure_6_benchmark(benchmark):
    result = benchmark.pedantic(
        lambda: figure_6(
            datasets=("lake",), lams=(0.001, 0.1, 10.0), n_runs=1, fast=True
        ),
        rounds=1, iterations=1,
    )
    print_result_table("Figure 6: lambda sweep (lake, reduced)", result)
    assert set(result) == {"lake/smf", "lake/smfl"}
