"""Benchmark: regenerate Figure 4 (downstream applications).

Figure 4a: accumulated fuel-consumption error per imputation method on
the vehicle route-planning application - SMFL lowest in the paper.
Figure 4b: clustering accuracy per MF-family method on the lake data -
SMFL highest in the paper.
"""

from __future__ import annotations

from repro.experiments import figure_4a, figure_4b

from conftest import print_result_table


def test_figure_4a_benchmark(benchmark):
    result = benchmark.pedantic(
        lambda: figure_4a(
            methods=("knn", "iterative", "nmf", "smf", "smfl"),
            n_runs=1, n_routes=15, fast=True,
        ),
        rounds=1, iterations=1,
    )
    print_result_table("Figure 4a: accumulated fuel error (reduced)", result)
    assert all(v >= 0 for v in result.values())


def test_figure_4b_benchmark(benchmark):
    result = benchmark.pedantic(
        lambda: figure_4b(
            methods=("mc", "softimpute", "nmf", "smf", "smfl", "pca"),
            n_runs=1, fast=True,
        ),
        rounds=1, iterations=1,
    )
    print_result_table("Figure 4b: clustering accuracy (reduced)", result)
    assert all(0 <= v <= 1 for v in result.values())
