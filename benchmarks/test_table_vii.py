"""Benchmark: regenerate Table VII (NMF/SMF/SMFL vs missing rate).

Paper's Table VII shape: SMFL <= SMF < NMF in every cell; all methods
degrade slowly as the missing rate rises from 10% to 50%; NMF is
roughly flat but high.
"""

from __future__ import annotations

from repro.experiments import table_vii

from conftest import print_result_table


def test_table_vii_benchmark(benchmark):
    result = benchmark.pedantic(
        lambda: table_vii(
            datasets=("lake",), missing_rates=(0.1, 0.3, 0.5),
            n_runs=1, fast=True,
        ),
        rounds=1, iterations=1,
    )
    print_result_table("Table VII (lake, reduced scale, 1 run)", result)
    assert set(result) == {"lake/nmf", "lake/smf", "lake/smfl"}
