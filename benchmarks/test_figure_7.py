"""Benchmark: regenerate Figure 7 (varying the neighbour count p).

Paper's Figure 7 shape: a moderately small p (the paper finds p = 3)
works best; very large p links weakly related tuples and degrades both
SMF and SMFL.
"""

from __future__ import annotations

from repro.experiments import figure_7

from conftest import print_result_table


def test_figure_7_benchmark(benchmark):
    result = benchmark.pedantic(
        lambda: figure_7(datasets=("lake",), ps=(1, 3, 10), n_runs=1, fast=True),
        rounds=1, iterations=1,
    )
    print_result_table("Figure 7: p sweep (lake, reduced)", result)
    assert set(result["lake/smfl"]) == {"1", "3", "10"}
