"""Benchmark: regenerate Figure 8 (varying the landmark count K).

Paper's Figure 8 shape: accuracy improves with K and flattens - a
moderately large K is recommended (bounded by K < min(N, M)).
"""

from __future__ import annotations

from repro.experiments import figure_8

from conftest import print_result_table


def test_figure_8_benchmark(benchmark):
    result = benchmark.pedantic(
        lambda: figure_8(datasets=("lake",), ranks=(2, 4, 6), n_runs=1, fast=True),
        rounds=1, iterations=1,
    )
    print_result_table("Figure 8: K sweep (lake, reduced)", result)
    row = result["lake/smfl"]
    # The large-K end should not be worse than the smallest K.
    assert row["6.0"] <= row["2.0"]
