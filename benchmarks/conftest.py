"""Shared benchmark fixtures.

Every benchmark runs the real experiment code on reduced settings
(``fast=True`` row counts, fewer repetitions, method subsets) so the
whole suite completes on a laptop in minutes while still exercising the
full pipeline of each paper table/figure.  Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.data import load_dataset
from repro.masking import MissingSpec, inject_missing


@pytest.fixture(scope="session")
def lake_trial():
    """A mid-size lake trial reused by the kernel benchmarks."""
    data = load_dataset("lake", n_rows=300)
    x_missing, mask = inject_missing(
        data.values,
        MissingSpec(missing_rate=0.1, columns=data.attribute_columns),
        random_state=0,
    )
    return data, x_missing, mask


def print_result_table(title: str, results) -> None:
    """Print an experiment's result table below the benchmark output."""
    from repro.experiments.reporting import format_series, format_table

    if results and all(isinstance(v, dict) for v in results.values()):
        text = format_table(results, title=title)
    else:
        text = format_series(results, title=title)
    print(f"\n{text}\n")  # noqa: T201
