"""Benchmarks for the design-choice ablations (DESIGN.md Section 6)."""

from __future__ import annotations

from repro.experiments.ablations import (
    ablation_clipping,
    ablation_initialisation,
    ablation_landmark_source,
)

from conftest import print_result_table


def test_ablation_landmark_source(benchmark):
    result = benchmark.pedantic(
        lambda: ablation_landmark_source(n_runs=2, fast=True),
        rounds=1, iterations=1,
    )
    print_result_table("Ablation: landmark source", result)
    row = result["lake/smfl"]
    # Data-adaptive sources should not lose to uniform-random landmarks.
    assert min(row["kmeans"], row["medoid"]) <= row["random"] * 1.1


def test_ablation_initialisation(benchmark):
    result = benchmark.pedantic(
        lambda: ablation_initialisation(n_runs=2, fast=True),
        rounds=1, iterations=1,
    )
    print_result_table("Ablation: initialisation", result)
    row = result["lake/smfl"]
    assert row["landmark"] <= row["random"] * 1.05


def test_ablation_clipping(benchmark):
    result = benchmark.pedantic(
        lambda: ablation_clipping(n_runs=2, fast=True),
        rounds=1, iterations=1,
    )
    print_result_table("Ablation: observed-range clipping", result)
    for row in result.values():
        assert row["clip"] <= row["no-clip"] * 1.05
