"""Benchmark: regenerate Table VI (repair RMS, error rate 10%).

Paper's Table VI shape: the MF family (SMFL best) beats the dedicated
repair systems Baran and HoloClean, which cannot exploit spatial
smoothness.
"""

from __future__ import annotations

from repro.experiments import table_vi

from conftest import print_result_table


def test_table_vi_benchmark(benchmark):
    result = benchmark.pedantic(
        lambda: table_vi(n_runs=1, fast=True),
        rounds=1, iterations=1,
    )
    print_result_table("Table VI (reduced scale, 1 run)", result)
    for dataset, row in result.items():
        assert set(row) == {"baran", "holoclean", "nmf", "smf", "smfl"}
        assert all(v > 0 for v in row.values()), dataset
