"""Benchmark: regenerate Table IV (imputation RMS, missing rate 10%).

Paper's Table IV shape: SMFL best on every dataset; DLM/Iterative the
strongest baselines; GAIN/CAMF trail; SMFL < SMF < NMF.  The benchmark
regenerates the table at reduced scale and prints it (the ordering
assertions live in tests/test_reproduction.py).
"""

from __future__ import annotations

from repro.experiments import table_iv

from conftest import print_result_table

METHODS = ("knn", "dlm", "iterative", "nmf", "smf", "smfl")


def test_table_iv_benchmark(benchmark):
    result = benchmark.pedantic(
        lambda: table_iv(methods=METHODS, n_runs=1, fast=True),
        rounds=1, iterations=1,
    )
    print_result_table("Table IV (reduced scale, 1 run)", result)
    for dataset, row in result.items():
        assert all(v > 0 for v in row.values()), dataset
