"""Quickstart: impute missing spatial data with SMFL.

Loads the lake dataset, removes 10% of the attribute values, imputes
them with SMFL, and compares against the NMF and SMF ablations plus a
column-mean floor.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import SMF, SMFL, MaskedNMF
from repro.baselines import MeanImputer
from repro.data import load_dataset
from repro.masking import MissingSpec, inject_missing
from repro.metrics import rms_over_mask


def main() -> None:
    # 1. Load a spatial dataset: the first two columns are latitude and
    #    longitude, the rest are attributes (min-max normalised).
    data = load_dataset("lake", n_rows=400, random_state=0)
    print(f"dataset: {data.name}, {data.n_rows} rows x {data.n_cols} cols")
    print(f"columns: {', '.join(data.column_names)}")

    # 2. Hide 10% of the attribute values (the ground truth stays with us).
    x_missing, mask = inject_missing(
        data.values,
        MissingSpec(missing_rate=0.10, columns=data.attribute_columns),
        random_state=0,
    )
    print(f"hidden cells: {mask.n_unobserved} of {mask.observed.size}")

    # 3. Impute with SMFL and its ablations.
    models = {
        "mean": MeanImputer(),
        "NMF": MaskedNMF(rank=6, random_state=0),
        "SMF": SMF(rank=6, n_spatial=data.n_spatial, random_state=0),
        "SMFL": SMFL(rank=6, n_spatial=data.n_spatial, random_state=0),
    }
    print("\nimputation RMS over the hidden cells (lower is better):")
    for name, model in models.items():
        imputed = model.fit_impute(x_missing, mask)
        rms = rms_over_mask(imputed, data.values, mask)
        print(f"  {name:5s} {rms:.4f}")

    # 4. Inspect SMFL's landmarks: the learned feature locations are the
    #    K-means centers of the observations, i.e. interpretable places.
    smfl = models["SMFL"]
    print("\nSMFL landmark locations (first two columns of V):")
    for i, (lat, lon) in enumerate(smfl.feature_locations()):
        print(f"  feature {i}: ({lat:.3f}, {lon:.3f})")


if __name__ == "__main__":
    main()
