"""Where do the learned features live?  (Figures 1 and 5.)

The paper's interpretability claim: NMF/SMF feature locations (the
first two columns of V) drift anywhere - even "into the ocean" - while
SMFL's landmarks pin them to K-means centers of the observations.

This script fits SMF (both update rules) and SMFL on the vehicle data,
prints each model's feature locations against the observation bounding
box, and renders a small ASCII map.

Run:  python examples/landmark_interpretability.py
"""

from __future__ import annotations

import numpy as np

from repro.core import SMF, SMFL
from repro.data import load_dataset
from repro.masking import MissingSpec, inject_missing


def ascii_map(observations: np.ndarray, features: dict[str, np.ndarray]) -> str:
    """Render observations (.) and feature locations (letters) on a grid."""
    all_points = np.vstack([observations] + list(features.values()))
    low = all_points.min(axis=0)
    high = all_points.max(axis=0)
    span = np.maximum(high - low, 1e-9)
    height, width = 18, 60
    grid = [[" "] * width for _ in range(height)]

    def place(point: np.ndarray, marker: str) -> None:
        r = int((point[0] - low[0]) / span[0] * (height - 1))
        c = int((point[1] - low[1]) / span[1] * (width - 1))
        grid[height - 1 - r][c] = marker

    for row in observations:
        place(row, ".")
    for marker, locations in features.items():
        for row in locations:
            place(row, marker)
    return "\n".join("".join(line) for line in grid)


def main() -> None:
    data = load_dataset("vehicle", n_rows=400, random_state=None)
    x_missing, mask = inject_missing(
        data.values,
        MissingSpec(missing_rate=0.10, columns=data.attribute_columns),
        random_state=0,
    )
    rank = 5
    models = {
        "G": SMF(rank=rank, n_spatial=2, update_rule="gradient",
                 learning_rate=1e-3, random_state=0),  # SMF-GD
        "M": SMF(rank=rank, n_spatial=2, random_state=0),  # SMF-Multi
        "L": SMFL(rank=rank, n_spatial=2, random_state=0),  # SMFL landmarks
    }
    locations = {}
    for marker, model in models.items():
        model.fit(x_missing, mask)
        locations[marker] = model.feature_locations()

    box_low = data.spatial.min(axis=0)
    box_high = data.spatial.max(axis=0)
    print("observation bounding box:", np.round(box_low, 3), "-",
          np.round(box_high, 3))
    for marker, label in (("G", "SMF-GD"), ("M", "SMF-Multi"), ("L", "SMFL")):
        inside = (
            (locations[marker] >= box_low) & (locations[marker] <= box_high)
        ).all(axis=1)
        print(f"\n{label} feature locations "
              f"({inside.sum()}/{rank} inside the box):")
        for i, point in enumerate(locations[marker]):
            flag = "in " if inside[i] else "OUT"
            print(f"  [{flag}] ({point[0]:7.3f}, {point[1]:7.3f})")

    print("\nmap ('.' observations, G=SMF-GD, M=SMF-Multi, L=SMFL landmarks):")
    print(ascii_map(data.spatial, locations))


if __name__ == "__main__":
    main()
