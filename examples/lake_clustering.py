"""Clustering lakes with missing values (Figure 4b).

The second downstream application: group lakes into eco-regions even
though some measurements are missing.  MF-based methods impute and
cluster in one model - the coefficient matrix U weights each tuple's
cluster memberships - so spatial information helps both steps.

Run:  python examples/lake_clustering.py
"""

from __future__ import annotations

import numpy as np

from repro.apps import clustering_application_accuracy
from repro.baselines import make_imputer
from repro.data import load_dataset
from repro.masking import MissingSpec, inject_missing


def main() -> None:
    data = load_dataset("lake", n_rows=500, random_state=None)
    assert data.labels is not None
    n_regions = int(np.unique(data.labels).size)
    print(f"{data.n_rows} lakes, {n_regions} ground-truth eco-regions")

    x_missing, mask = inject_missing(
        data.values,
        MissingSpec(missing_rate=0.10, columns=data.attribute_columns),
        random_state=0,
    )

    print("\nclustering accuracy with 10% missing values (higher is better):")
    # PCA baseline: mean-impute, project, K-means (the classic MF-based
    # clustering of the paper's Figure 4b).
    pca_accuracy = clustering_application_accuracy(
        make_imputer("mean", random_state=0),
        x_missing, mask, data.labels,
        pca_components=3, random_state=0,
    )
    print(f"  {'pca':12s} {pca_accuracy:.3f}")

    for method in ("mc", "softimpute", "nmf", "smf", "smfl"):
        imputer = make_imputer(method, n_spatial=data.n_spatial, rank=6, random_state=0)
        use_u = method in ("nmf", "smf", "smfl")
        accuracy = clustering_application_accuracy(
            imputer, x_missing, mask, data.labels,
            use_coefficients=use_u, random_state=0,
        )
        tag = " (clusters from U)" if use_u else " (K-means on imputed)"
        print(f"  {method:12s} {accuracy:.3f}{tag}")


if __name__ == "__main__":
    main()
