"""Vehicle route planning on an imputed fuel-consumption map (Fig. 4a).

The paper's motivating application: a heavy-machine fleet wants routes
with low accumulated fuel consumption, but the fuel-rate map has holes
(broken sensors).  Better imputation -> more accurate accumulated-
consumption estimates -> better route choices.

This script imputes the vehicle dataset's missing fuel rates with
several methods, simulates candidate routes, and reports each method's
accumulated-consumption error - and how often it changes which of two
candidate routes looks cheaper.

Run:  python examples/vehicle_route_planning.py
"""

from __future__ import annotations

import numpy as np

from repro.apps import generate_routes, route_fuel_consumption, route_planning_error
from repro.baselines import make_imputer
from repro.data import load_dataset
from repro.masking import MissingSpec, inject_missing

METHODS = ("mean", "knn", "iterative", "nmf", "smf", "smfl")


def main() -> None:
    data = load_dataset("vehicle", n_rows=500, random_state=None)
    fuel_col = data.column_names.index("fuel_consumption_rate")
    x_missing, mask = inject_missing(
        data.values,
        MissingSpec(missing_rate=0.10, columns=data.attribute_columns),
        random_state=0,
    )
    locations = data.spatial
    routes = generate_routes(locations, 40, route_length=8, random_state=0)
    true_rates = data.values[:, fuel_col]

    print("accumulated fuel-consumption error per imputation method")
    print("(mean absolute error across 40 simulated routes; lower is better)\n")
    errors = {}
    for method in METHODS:
        imputer = make_imputer(method, n_spatial=data.n_spatial, rank=6, random_state=0)
        estimate = imputer.fit_impute(x_missing, mask)
        errors[method] = route_planning_error(
            routes, locations, true_rates, estimate[:, fuel_col]
        )
        print(f"  {method:10s} {errors[method]:.5f}")

    # How often would the planner pick the wrong route of a random pair?
    print("\nwrong-route decisions out of 100 route pairs:")
    rng = np.random.default_rng(1)
    pairs = [(routes[i], routes[j]) for i, j in
             rng.integers(len(routes), size=(100, 2)) if i != j]
    for method in METHODS:
        imputer = make_imputer(method, n_spatial=data.n_spatial, rank=6, random_state=0)
        estimate = imputer.fit_impute(x_missing, mask)[:, fuel_col]
        wrong = 0
        for route_a, route_b in pairs:
            true_cheaper = (
                route_fuel_consumption(route_a, locations, true_rates)
                < route_fuel_consumption(route_b, locations, true_rates)
            )
            est_cheaper = (
                route_fuel_consumption(route_a, locations, estimate)
                < route_fuel_consumption(route_b, locations, estimate)
            )
            wrong += true_cheaper != est_cheaper
        print(f"  {method:10s} {wrong}/{len(pairs)}")


if __name__ == "__main__":
    main()
