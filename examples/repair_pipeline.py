"""End-to-end data repair (Table VI): detect dirty cells, then fix them.

The repair task of Section IV-B2: values have been *replaced* by other
in-domain values (not removed), so the pipeline is detect -> correct.
This script runs both detector modes - the evaluation oracle (injected
cells known) and the statistical detector - and compares the MF-family
correctors against the Baran/HoloClean-style baselines.

Run:  python examples/repair_pipeline.py
"""

from __future__ import annotations

from repro.baselines import make_imputer
from repro.data import load_dataset
from repro.masking import ErrorSpec, inject_errors
from repro.metrics import rms_over_mask
from repro.repair import (
    BaranRepairer,
    HoloCleanRepairer,
    MFRepairer,
    OracleDetector,
    StatisticalDetector,
)


def main() -> None:
    data = load_dataset("vehicle", n_rows=400, random_state=None)
    x_dirty, dirty_mask = inject_errors(
        data.values, ErrorSpec(error_rate=0.10), random_state=0
    )
    print(f"injected {dirty_mask.n_unobserved} dirty cells "
          f"({dirty_mask.n_unobserved / dirty_mask.observed.size:.1%})")
    print(f"dirty-matrix RMS vs truth: "
          f"{rms_over_mask(x_dirty, data.values, dirty_mask):.4f}\n")

    repairers = {
        "baran": BaranRepairer(random_state=0),
        "holoclean": HoloCleanRepairer(),
        "nmf": MFRepairer(make_imputer("nmf", rank=6, random_state=0)),
        "smf": MFRepairer(make_imputer("smf", n_spatial=2, rank=6, random_state=0)),
        "smfl": MFRepairer(make_imputer("smfl", n_spatial=2, rank=6, random_state=0)),
    }

    print("repair RMS with the evaluation oracle detector (Table VI mode):")
    oracle = OracleDetector(dirty_mask)
    detected = oracle.detect(x_dirty)
    for name, repairer in repairers.items():
        fixed = repairer.repair(x_dirty, detected)
        print(f"  {name:10s} {rms_over_mask(fixed, data.values, dirty_mask):.4f}")

    print("\nrepair RMS with the statistical detector (fully blind):")
    detector = StatisticalDetector(threshold=3.0)
    blind = detector.detect(x_dirty)
    flagged = blind.unobserved.sum()
    truly_dirty = (blind.unobserved & dirty_mask.unobserved).sum()
    print(f"  detector flagged {flagged} cells "
          f"({truly_dirty} of them actually dirty)")
    for name, repairer in repairers.items():
        fixed = repairer.repair(x_dirty, blind)
        # Evaluation is still against the injected cells.
        print(f"  {name:10s} {rms_over_mask(fixed, data.values, dirty_mask):.4f}")


if __name__ == "__main__":
    main()
