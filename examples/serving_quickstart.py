"""Serving quickstart: persist a fitted model, fold in new rows, no refit.

Fits SMFL on a training slice of the lake dataset, saves the fitted
state as a versioned artifact (JSON metadata + npz arrays with a
content hash), reloads it in "another process", and serves held-out
rows through the batched fold-in path - one O(M K^2) ridge solve per
row against the frozen feature matrix, with the spatial-neighbour
prior standing in for the training-time graph regularizer.

Run:  python examples/serving_quickstart.py
"""

from __future__ import annotations

import os
import tempfile

import numpy as np

from repro import SMFL
from repro.data import load_dataset
from repro.masking import MissingSpec, inject_missing
from repro.metrics import rms_over_mask
from repro.model import load_model, verify_model
from repro.serving import FoldInServer


def main() -> None:
    # 1. Fit on the first 300 rows; hold out 60 rows the model never sees.
    data = load_dataset("lake", n_rows=360, random_state=0)
    x_missing, mask = inject_missing(
        data.values,
        MissingSpec(missing_rate=0.10, columns=data.attribute_columns),
        random_state=0,
    )
    n_train = 300
    model = SMFL(rank=6, n_spatial=data.n_spatial, random_state=0)
    model.fit(x_missing[:n_train], mask.observed[:n_train])

    # 2. Persist the fitted state as a versioned artifact.
    with tempfile.TemporaryDirectory() as tmp:
        base = os.path.join(tmp, "smfl-lake")
        info = model.fitted_model().save(base)
        print(f"artifact: {info['json_path']}")
        print(f"content hash: {info['content_hash'][:16]}...")
        print(f"verified: {verify_model(base)['ok']}")

        # 3. "Another process": load the artifact (digests re-checked)
        #    and boot a server around it. No solver import needed.
        served = load_model(base)

        # Serving requests mark unobserved cells with NaN (the protocol
        # layer zero-fills them, which a maskless request would read as
        # observed zeros).
        server = FoldInServer(served)
        held_x = x_missing[n_train:].copy()
        held_x[~mask.observed[n_train:]] = np.nan
        imputed = server.impute_rows(held_x)

    # 4. The held-out rows were imputed without a refit.
    held_mask = mask.observed[n_train:]
    truth = data.values[n_train:]
    unobserved = ~held_mask
    rms = float(
        np.sqrt(np.mean((imputed[unobserved] - truth[unobserved]) ** 2))
    )
    print(f"\nfolded in {held_x.shape[0]} held-out rows")
    print(f"held-out RMS (unobserved cells): {rms:.4f}")

    # Compare with the refit-everything upper bound.
    from repro.masking import ObservationMask

    full = SMFL(rank=6, n_spatial=data.n_spatial, random_state=0)
    refit = full.fit_impute(x_missing, mask)[n_train:]
    rms_refit = rms_over_mask(refit, truth, ObservationMask(held_mask))
    print(f"full-refit RMS on the same rows:  {rms_refit:.4f}")

    stats = server.stats()
    print(
        f"\nserver: {stats['rows']} rows in {stats['requests']} request(s), "
        f"{stats['imputations_per_second']:.0f} imputations/s"
    )


if __name__ == "__main__":
    main()
